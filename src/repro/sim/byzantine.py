"""Declarative Byzantine adversary injection for the consensus stack.

The fault schedules in :mod:`repro.sim.faults` model nodes that *die*;
this module models nodes that *lie*. A :class:`ByzantineSchedule` is a
list of timed misbehaviour windows — equivocation, vote withholding,
selective delay/reordering, leader-targeted censorship — and a
:class:`ByzantineAdversary` enacts them by interposing on the message
path of :class:`repro.consensus.base.ConsensusHarness`, so every
message-level protocol (HotStuff, IBFT, Tower BFT, Algorand, Raft,
Clique, Snowball) can be driven with up to ``f`` adversarial replicas
without touching the protocol logic itself.

Adversary model (see ARCHITECTURE.md "Adversary model" for the full
statement): the adversary controls the scheduled replicas' outgoing
messages only. It can fork, withhold, delay and selectively drop what
those replicas send, and drop what they receive from a targeted leader —
it cannot forge signatures (equivocated values are *marked* variants of
real payloads, never fabrications attributed to honest nodes), spawn
Sybil identities, or touch honest-to-honest traffic.

The empty schedule is a strict no-op: the harness normalises an
adversary with no events to ``None`` and never consults it, so benign
runs stay byte-identical with or without the subsystem (the same
contract the tracing layer makes).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.common.errors import SpecError
from repro.common.rng import RngFactory

#: marker appended to forked leaf values; honest protocols treat payloads
#: as opaque, so a suffixed variant is a coherent competing value
EQUIVOCATION_MARK = "~equiv"

# -- byzantine events --------------------------------------------------------


def _check_window(event: Any) -> None:
    if event.start < 0:
        raise SpecError(
            f"byzantine windows cannot open before t=0: {event!r}")
    if event.stop <= event.start:
        raise SpecError(
            f"byzantine window must close after it opens: {event!r}")


@dataclass(frozen=True)
class Equivocate:
    """*node* sends conflicting variants to disjoint peer sets.

    Within [start, stop) every protocol message the node sends reaches
    half of its peers unchanged and the other half with the value-bearing
    fields forked (structure, certificates and parent links preserved).
    """

    start: float
    stop: float
    node: int

    def __post_init__(self) -> None:
        _check_window(self)


@dataclass(frozen=True)
class Silence:
    """*node* withholds all outgoing protocol messages in [start, stop).

    Unlike a crash the node keeps receiving and updating local state —
    it is a vote-withholding attack, not a fail-stop.
    """

    start: float
    stop: float
    node: int

    def __post_init__(self) -> None:
        _check_window(self)


@dataclass(frozen=True)
class DelayReorder:
    """*node* delays each outgoing message by a random amount.

    Per-message delays are drawn i.i.d. from [min_delay, max_delay), so
    messages sent in one order can arrive reordered — a rushing/lagging
    adversary bounded by the window.
    """

    start: float
    stop: float
    node: int
    min_delay: float = 0.05
    max_delay: float = 0.5

    def __post_init__(self) -> None:
        _check_window(self)
        if self.min_delay < 0:
            raise SpecError(
                f"min_delay cannot be negative: {self.min_delay}")
        if self.max_delay < self.min_delay:
            raise SpecError(
                f"max_delay must be >= min_delay: {self.max_delay}"
                f" < {self.min_delay}")


@dataclass(frozen=True)
class CensorLeader:
    """*node* drops all traffic to and from the current leader.

    The censor starves whoever its own protocol state machine believes
    leads the current view/round/slot. Leaderless protocols (Algorand's
    sortition committees, Snowball) have no stable target; there the
    event is a no-op by design.
    """

    start: float
    stop: float
    node: int

    def __post_init__(self) -> None:
        _check_window(self)


ByzantineEvent = Any  # Union of the dataclasses above

_BYZ_KINDS = {
    Equivocate: "equivocate",
    Silence: "silence",
    DelayReorder: "delay_reorder",
    CensorLeader: "censor_leader",
}


def byzantine_event_kind(event: ByzantineEvent) -> str:
    """Short string tag for an event ('equivocate', 'silence', ...)."""
    try:
        return _BYZ_KINDS[type(event)]
    except KeyError:
        raise SpecError(f"unknown byzantine event {event!r}") from None


def byzantine_event_summary(event: ByzantineEvent) -> Dict[str, Any]:
    """JSON-friendly description of one event (for benchmark results).

    Summaries use the same ``at``/``kind`` envelope as fault events plus
    a ``duration``, so they merge into ``BenchmarkResult.fault_events``
    and the degradation metrics treat the window as a disruption.
    """
    summary: Dict[str, Any] = {
        "at": event.start,
        "kind": byzantine_event_kind(event),
        "node": event.node,
        "duration": event.stop - event.start,
    }
    if isinstance(event, DelayReorder):
        summary["min_delay"] = event.min_delay
        summary["max_delay"] = event.max_delay
    return summary


def byzantine_events_from_dicts(
        raw: Sequence[Dict[str, Any]]) -> Tuple[ByzantineEvent, ...]:
    """Parse the ``byzantine:`` section of a workload spec.

    Each entry is a mapping with ``start``, ``stop`` and ``kind``::

        byzantine:
          - { start: 10, stop: 30, kind: equivocate, node: 0 }
          - { start: 10, stop: 30, kind: silence, nodes: [1, 2] }
          - { start: 5,  stop: 20, kind: delay_reorder, node: 3,
              min_delay: 0.1, max_delay: 0.4 }
          - { start: 0,  stop: 15, kind: censor_leader, node: 1 }

    Every kind accepts either ``node: k`` or ``nodes: [...]`` and
    expands to one event per node. Malformed entries raise
    :class:`~repro.common.errors.SpecError` at parse time.
    """
    events: List[ByzantineEvent] = []
    for entry in raw:
        if not isinstance(entry, dict):
            raise SpecError(f"byzantine entry must be a mapping: {entry!r}")
        try:
            start = float(entry["start"])
            stop = float(entry["stop"])
            kind = str(entry["kind"])
        except (KeyError, TypeError, ValueError):
            raise SpecError(
                "byzantine entry needs 'start', 'stop' and 'kind':"
                f" {entry!r}") from None
        nodes = entry.get("nodes", entry.get("node"))
        if nodes is None:
            raise SpecError(f"{kind} event needs 'node' or 'nodes'")
        if not isinstance(nodes, (list, tuple)):
            nodes = [nodes]
        for node in nodes:
            if not isinstance(node, int) or isinstance(node, bool):
                raise SpecError(
                    f"byzantine node must be a replica index: {node!r}"
                    f" in {entry!r}")
            if kind == "equivocate":
                events.append(Equivocate(start, stop, node))
            elif kind == "silence":
                events.append(Silence(start, stop, node))
            elif kind == "delay_reorder":
                events.append(DelayReorder(
                    start, stop, node,
                    min_delay=float(entry.get("min_delay", 0.05)),
                    max_delay=float(entry.get("max_delay", 0.5))))
            elif kind == "censor_leader":
                events.append(CensorLeader(start, stop, node))
            else:
                raise SpecError(f"unknown byzantine kind {kind!r}")
    return tuple(events)


# -- the schedule ------------------------------------------------------------


@dataclass(frozen=True)
class ByzantineSchedule:
    """An ordered list of misbehaviour windows applied over one run."""

    events: Tuple[ByzantineEvent, ...] = ()

    def __post_init__(self) -> None:
        for event in self.events:
            byzantine_event_kind(event)  # validates the type
        ordered = tuple(sorted(
            self.events,
            key=lambda e: (e.start, e.stop, byzantine_event_kind(e), e.node)))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @staticmethod
    def from_dicts(raw: Sequence[Dict[str, Any]]) -> "ByzantineSchedule":
        return ByzantineSchedule(byzantine_events_from_dicts(raw))

    def summaries(self) -> List[Dict[str, Any]]:
        return [byzantine_event_summary(event) for event in self.events]

    def nodes(self) -> Tuple[int, ...]:
        """Sorted ids of every replica the schedule corrupts at any time."""
        return tuple(sorted({event.node for event in self.events}))

    def window(self) -> Optional[Tuple[float, float]]:
        """(first window open, last window close) — the attack interval."""
        if not self.events:
            return None
        return (min(e.start for e in self.events),
                max(e.stop for e in self.events))

    def active_nodes(self, now: float) -> Set[int]:
        """Replicas misbehaving at virtual time *now*."""
        return {e.node for e in self.events if e.start <= now < e.stop}

    def active_fraction(self, now: float, node_count: int) -> float:
        """Fraction of the deployment misbehaving at *now* (for the
        analytic :class:`~repro.consensus.models.ConsensusPerfModel`)."""
        if node_count <= 0:
            return 0.0
        return len(self.active_nodes(now)) / node_count

    def validate(self, node_count: int) -> None:
        """Fail fast if any event names a replica outside the deployment."""
        for event in self.events:
            if not 0 <= event.node < node_count:
                raise SpecError(
                    f"byzantine event references unknown node {event.node!r}"
                    f" (deployment has {node_count} nodes):"
                    f" {byzantine_event_summary(event)}")


# -- equivocation: structural payload forking --------------------------------

#: leaf strings under these field names carry the proposed value (or a
#: digest of it) and are forked on the equivocating half of the audience
_VALUE_FIELDS = frozenset({"value", "digest", "block_id", "hash",
                           "preference"})

#: subtrees under these field names are certificates or chain linkage;
#: forking them would make the variant *invalid* (rejected, degrading the
#: attack to silence) rather than *conflicting*, so they are preserved
_PRESERVE_FIELDS = frozenset({"justify", "high_qc", "parent_id",
                              "parent_slot", "prev_index", "prev_term",
                              "leader_commit"})


def _variant_value(obj: Any, marked: bool, key: Optional[str],
                   changed: List[bool]) -> Any:
    """Deep-copy *obj*, normalising value-bearing leaf strings to one of
    the two equivocation stories.

    ``marked=True`` yields the forked story (mark appended),
    ``marked=False`` the plain one (mark stripped). Normalising rather
    than blindly appending lets *several* equivocators tell the same two
    stories — each signs the plain variant towards even peers and the
    marked variant towards odd peers, whichever variant it happens to
    hold — which is the classical coordinated double-sign. Certificate
    and linkage subtrees pass through unchanged (shared with the
    original — receivers never mutate them).
    """
    if key in _PRESERVE_FIELDS:
        return obj
    if isinstance(obj, str):
        if key in _VALUE_FIELDS:
            if marked and not obj.endswith(EQUIVOCATION_MARK):
                changed.append(True)
                return obj + EQUIVOCATION_MARK
            if not marked and obj.endswith(EQUIVOCATION_MARK):
                changed.append(True)
                return obj[:-len(EQUIVOCATION_MARK)]
        return obj
    if isinstance(obj, dict):
        return {k: _variant_value(v, marked, k, changed)
                for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return type(obj)(_variant_value(item, marked, key, changed)
                         for item in obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        kwargs = {f.name: _variant_value(getattr(obj, f.name), marked,
                                         f.name, changed)
                  for f in dataclasses.fields(obj) if f.init}
        return type(obj)(**kwargs)
    return obj


def equivocal_variant(message: Any, marked: bool) -> Tuple[Any, bool]:
    """The story-*marked* variant of a protocol message.

    Returns ``(message, changed)``; when nothing needed normalising the
    original object passes through untouched (``changed`` False).
    """
    changed: List[bool] = []
    payload = _variant_value(message.payload, marked, None, changed)
    if not changed:
        return message, False
    return type(message)(kind=message.kind, sender=message.sender,
                         payload=payload, size=message.size), True


# -- the adversary -----------------------------------------------------------


class ByzantineAdversary:
    """Enacts a :class:`ByzantineSchedule` on a consensus harness.

    The harness consults :meth:`intervene` on every routed message after
    crash/partition filtering and before stochastic loss; the adversary
    decides to drop, fork or delay it. All randomness comes from the
    adversary's own named RNG streams, so attaching it never perturbs the
    harness's loss draws (and an empty schedule is normalised away by the
    harness before any draw can happen).
    """

    def __init__(self, schedule: ByzantineSchedule,
                 seed: int = 0, tracer: Optional[Any] = None) -> None:
        self.schedule = schedule
        self.tracer = tracer
        self._delay_rng = RngFactory(seed).stream("byzantine", "delay")
        self._windows: Dict[str, Dict[int, List[ByzantineEvent]]] = {
            kind: {} for kind in _BYZ_KINDS.values()}
        for event in schedule:
            kind = byzantine_event_kind(event)
            self._windows[kind].setdefault(event.node, []).append(event)
        self._harness: Optional[Any] = None
        self._counters: Dict[str, Any] = {}

    def bind(self, harness: Any) -> None:
        """Attach to a harness: counters land in its metrics registry."""
        self._harness = harness
        ns = harness.metrics.namespace("byzantine")
        self._counters = {
            "equivocations": ns.counter("equivocations"),
            "withheld": ns.counter("withheld"),
            "delayed": ns.counter("delayed"),
            "censored": ns.counter("censored"),
        }
        if self.tracer is not None:
            for index, event in enumerate(self.schedule):
                self.tracer.adversary_window(
                    index, byzantine_event_kind(event),
                    event.start, event.stop, event.node)

    def nodes(self) -> Tuple[int, ...]:
        return self.schedule.nodes()

    def counters(self) -> Dict[str, int]:
        """Intervention totals so far (empty before :meth:`bind`)."""
        return {name: counter.value
                for name, counter in self._counters.items()}

    def _active(self, kind: str, node: int, now: float
                ) -> Optional[ByzantineEvent]:
        for event in self._windows[kind].get(node, ()):
            if event.start <= now < event.stop:
                return event
        return None

    def _count(self, name: str) -> None:
        counter = self._counters.get(name)
        if counter is not None:
            counter.inc()

    def _trace(self, now: float, action: str, **info: Any) -> None:
        if self.tracer is not None:
            self.tracer.adversary_action(now, action, **info)

    # -- interposition -------------------------------------------------------

    def intervene(self, sender: int, target: int, message: Any,
                  now: float) -> Tuple[Optional[Any], float]:
        """Decide the fate of one routed message.

        Returns ``(message, extra_delay)``; ``message`` is ``None`` when
        the adversary swallows it, the original when it passes untouched,
        or a forked variant for the equivocating half of the audience.
        Self-deliveries pass undropped and undelayed; an equivocator's
        self-delivery is normalised to its own parity's story so the
        adversarial replica itself stays internally consistent with the
        fork it shows its half of the network.
        """
        if sender == target:
            if self._active("equivocate", sender, now) is not None:
                message, _ = equivocal_variant(
                    message, marked=self._forked_audience(sender))
            return message, 0.0
        if self._active("silence", sender, now) is not None:
            self._count("withheld")
            self._trace(now, "withheld", node=sender,
                        to=target, message=message.kind)
            return None, 0.0
        if self._censors_pair(sender, target, now):
            self._count("censored")
            self._trace(now, "censored", node=sender,
                        to=target, message=message.kind)
            return None, 0.0
        delay = 0.0
        event = self._active("delay_reorder", sender, now)
        if event is not None:
            span = event.max_delay - event.min_delay
            delay = event.min_delay + span * float(self._delay_rng.random())
            self._count("delayed")
            self._trace(now, "delayed", node=sender, to=target,
                        message=message.kind, delay=round(delay, 6))
        if self._active("equivocate", sender, now) is not None:
            message, forked = equivocal_variant(
                message, marked=self._forked_audience(target))
            if forked:
                self._count("equivocations")
                self._trace(now, "equivocated", node=sender, to=target,
                            message=message.kind)
        return message, delay

    @staticmethod
    def _forked_audience(target: int) -> bool:
        """Odd-indexed peers receive the marked story, even-indexed the
        plain one — a fixed disjoint split, so each half observes a
        self-consistent history."""
        return target % 2 == 1

    def _censors_pair(self, sender: int, target: int, now: float) -> bool:
        """Does an active censor sit on either end of this delivery,
        with the *other* end being its current leader?"""
        if self._active("censor_leader", sender, now) is not None:
            if self._guess_leader(sender) == target:
                return True
        if self._active("censor_leader", target, now) is not None:
            if self._guess_leader(target) == sender:
                return True
        return False

    def _guess_leader(self, censor: int) -> Optional[int]:
        """The censor's local belief about who currently leads.

        Duck-types the protocol's own leader accessors; leaderless
        protocols expose none and yield ``None`` (no-op censorship).
        """
        if self._harness is None:
            return None
        replica = self._harness.replicas[censor]
        try:
            if hasattr(replica, "leader_of"):
                if hasattr(replica, "view"):        # hotstuff
                    return int(replica.leader_of(replica.view))
                if hasattr(replica, "current_slot"):  # tower bft
                    return int(replica.leader_of(replica.current_slot))
            if hasattr(replica, "proposer_of"):     # ibft
                return int(replica.proposer_of(replica.height,
                                               replica.round))
            if hasattr(replica, "in_turn"):         # clique
                return int(replica.in_turn(replica.head.height + 1))
            if hasattr(replica, "role"):            # raft: scan for the leader
                for i, peer in enumerate(self._harness.replicas):
                    if getattr(peer, "role", None) == "leader":
                        return i
        except (AttributeError, TypeError, ValueError):
            return None
        return None
