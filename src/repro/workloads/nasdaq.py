"""Exchange DApp workload — NASDAQ opening trades (§3, Table 2).

"The NASDAQ experiences a boom of trades at its opening at 9 AM Eastern
Time Zone. ... These workloads proceed in burst by experiencing an initial
demand of about 800 TPS for Google, 1300 TPS for Amazon, 3000 TPS for
Facebook, 4000 TPS for Microsoft and 10,000 TPS for Apple before dropping
to 10-60 TPS. The accumulated workload, denoted GAFAM, runs for 3 minutes
and experiences a peak of 19,800 TPS before dropping between 25-140 TPS."

The availability experiment (§6.5, Fig. 6) uses the Google, Microsoft and
Apple bursts separately.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.spec import LoadSchedule
from repro.workloads.traces import Trace, burst_then_decay

DURATION = 180.0  # "runs for 3 minutes"
DECAY_TIME = 1.2  # seconds for the opening boom to subside

# stock -> (opening peak TPS, steady floor TPS, buy function)
STOCK_PROFILES: Dict[str, Tuple[float, float, str]] = {
    "google": (800.0, 1.0, "buyGoogle"),
    "amazon": (1_300.0, 2.0, "buyAmazon"),
    "facebook": (3_000.0, 5.0, "buyFacebook"),
    "microsoft": (4_000.0, 8.0, "buyMicrosoft"),
    "apple": (10_000.0, 20.0, "buyApple"),
}


def stock_trace(stock: str) -> Trace:
    """The opening-burst workload of one GAFAM stock."""
    peak, floor, function = STOCK_PROFILES[stock]
    return Trace(
        name=f"nasdaq-{stock}",
        dapp="exchange",
        function=function,
        schedule=burst_then_decay(peak, floor, DURATION, DECAY_TIME),
        description=f"NASDAQ opening trades for {stock.capitalize()}")


def gafam_trace() -> Trace:
    """The accumulated GAFAM workload (the Fig. 2 Exchange column)."""
    profiles = list(STOCK_PROFILES.values())
    seconds = int(DURATION)
    rates: List[float] = []
    import numpy as np
    times = np.arange(seconds)
    total = np.zeros(seconds)
    for peak, floor, _ in profiles:
        total += floor + (peak - floor) * np.exp(-times / DECAY_TIME)
    rates = total.tolist()
    from repro.workloads.traces import schedule_from_rates
    # one buy function round-robins per encode; the combined trace drives
    # the whole ExchangeContractGafam through buyApple (the hottest stock)
    return Trace(
        name="nasdaq-gafam",
        dapp="exchange",
        function="buyApple",
        schedule=schedule_from_rates(rates),
        description="Accumulated GAFAM opening workload (peak ~19.8 kTPS)")


def expected_peak_tps() -> float:
    """The combined opening-second demand (paper: 19,800 TPS)."""
    return sum(peak for peak, _, _ in STOCK_PROFILES.values())
