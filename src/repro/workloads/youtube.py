"""Video sharing DApp workload — YouTube uploads (§3, Table 2).

From the 2007 edge study [18] the paper takes the peak hour (1,680,274
transactions per hour, ~467 TPS) and multiplies by YouTube's 83x growth to
2021: "we approximate the average throughput to 467 x 83 = 38,761 TPS,
which makes this DApp very demanding." Every evaluated blockchain commits
less than 1% of it (§6.1).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.traces import Trace, schedule_from_rates

DURATION = 180.0
PEAK_HOUR_2007_PER_HOUR = 1_680_274
GROWTH_FACTOR = 83


def derived_average_tps() -> float:
    """The paper's derivation: ~38,761 TPS."""
    return PEAK_HOUR_2007_PER_HOUR / 3600 * GROWTH_FACTOR


def youtube_trace() -> Trace:
    """The YouTube upload workload (~38.8 kTPS for 3 minutes)."""
    average = derived_average_tps()
    seconds = int(DURATION)
    times = np.arange(seconds)
    # upload traffic fluctuates mildly around the hourly average
    rates = average * (1.0 + 0.05 * np.sin(2 * np.pi * times / 90.0))
    return Trace(
        name="youtube",
        dapp="youtube",
        function="upload",
        args=("video-blob",),
        schedule=schedule_from_rates(rates.tolist()),
        description="YouTube uploads, ~38.8 kTPS for 180 s")
