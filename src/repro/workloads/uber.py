"""Mobility service DApp workload — Uber (§3, Table 2).

The paper derives the world-wide Uber demand from the NYC 2015 study [11]
scaled by ridership growth and the NYC/world ratio: "24 x 36 = 864 TPS".
The universality experiment (§6.4) describes the resulting workload as
"810 TPS to 900 TPS ... during 120 seconds"; every request invokes the
computationally intensive ``checkDistance``.
"""

from __future__ import annotations

import numpy as np

from repro.contracts.mobility import GRID_SIZE
from repro.workloads.traces import Trace, schedule_from_rates

DURATION = 120.0
RATE_LOW = 810.0
RATE_HIGH = 900.0

# derivation constants from §3, kept for the tests that re-check the math
NYC_PEAK_2015_PER_HOUR = 16_496
GROWTH_FACTOR = 7.91
NYC_SHARE_OF_WORLD = 1 / 24


def derived_world_tps() -> float:
    """The paper's demand derivation: ~864 TPS world-wide."""
    nyc_per_hour = NYC_PEAK_2015_PER_HOUR * GROWTH_FACTOR
    nyc_tps = nyc_per_hour / 3600
    return nyc_tps / NYC_SHARE_OF_WORLD


def uber_trace() -> Trace:
    """The Uber matching workload (810-900 TPS for 120 s)."""
    seconds = int(DURATION)
    times = np.arange(seconds)
    mid = (RATE_LOW + RATE_HIGH) / 2
    amp = (RATE_HIGH - RATE_LOW) / 2
    rates = mid + amp * np.sin(2 * np.pi * times / 60.0)
    return Trace(
        name="uber",
        dapp="uber",
        function="checkDistance",
        args=(GRID_SIZE // 2, GRID_SIZE // 2),
        schedule=schedule_from_rates(rates.tolist()),
        description="Uber ride matching, 810-900 TPS for 120 s, CPU heavy")
