"""Web service DApp workload — FIFA '98 world cup final (§3, Table 2).

"The duration of the workload is 176 seconds, sending ... at a rate varying
from 1416 to 5305 requests per second" — the most demanded quarter-hour of
the June 30th final, averaging ~3,500 TPS (the paper's Fig. 2 header lists
3,483 TPS average). We reconstruct the envelope as the recorded
minute-by-minute swell around half-time whistle traffic.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.traces import Trace, schedule_from_rates

DURATION = 176.0
RATE_LOW = 1_416.0
RATE_HIGH = 5_305.0


def fifa_trace() -> Trace:
    """The FIFA web-service workload."""
    seconds = int(DURATION)
    times = np.arange(seconds)
    mid = (RATE_LOW + RATE_HIGH) / 2
    amp = (RATE_HIGH - RATE_LOW) / 2
    # two swells over the window: traffic builds, dips, builds again
    rates = mid + amp * np.sin(2 * np.pi * times / seconds * 2 - np.pi / 2)
    return Trace(
        name="fifa",
        dapp="counter",
        function="add",
        schedule=schedule_from_rates(rates.tolist()),
        description="FIFA '98 final website hits, 1416-5305 TPS for 176 s")
