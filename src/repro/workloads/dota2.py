"""Gaming DApp workload — Dota 2 (§3, Table 2).

"The trace lasts for 276 seconds invoking at an almost constant update rate
of about 13,000 TPS, which is particularly demanding." The paper's example
configuration (§4) splits the load over 3 clients at 4432 TPS for 50 s then
4438 TPS — i.e. ~13,300 TPS aggregate; we reproduce that two-step profile
over the full 276 s.
"""

from __future__ import annotations

from repro.core.spec import LoadSchedule
from repro.workloads.traces import Trace

DURATION = 276.0
CLIENTS = 3
RATE_PHASE_1 = 4_432.0  # per client, first 50 s (the §4 example)
RATE_PHASE_2 = 4_438.0  # per client, remainder


def dota_trace() -> Trace:
    """The Dota 2 update workload (aggregate across the 3 clients)."""
    schedule = LoadSchedule((
        (0.0, CLIENTS * RATE_PHASE_1),
        (50.0, CLIENTS * RATE_PHASE_2),
        (DURATION, 0.0),
    ))
    return Trace(
        name="dota2",
        dapp="dota",
        function="update",
        args=(1, 1),
        schedule=schedule,
        description="Dota 2 position updates, ~13.3 kTPS for 276 s")
