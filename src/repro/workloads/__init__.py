"""The DIABLO workload suite: five realistic traces plus synthetic loads."""

from repro.workloads.dota2 import dota_trace
from repro.workloads.fifa import fifa_trace
from repro.workloads.nasdaq import (
    STOCK_PROFILES,
    expected_peak_tps,
    gafam_trace,
    stock_trace,
)
from repro.workloads.synthetic import (
    VISA_AVERAGE_TPS,
    constant_transfer_trace,
    deployment_challenge_trace,
    robustness_trace,
)
from repro.workloads.traces import (
    Trace,
    burst_then_decay,
    schedule_from_rates,
    sinusoid,
)
from repro.workloads.uber import derived_world_tps, uber_trace
from repro.workloads.youtube import derived_average_tps, youtube_trace


def dapp_suite() -> dict:
    """The five default DIABLO DApp workloads (Table 2), by name."""
    return {
        "exchange": gafam_trace(),
        "gaming": dota_trace(),
        "web": fifa_trace(),
        "mobility": uber_trace(),
        "video": youtube_trace(),
    }


def workload_registry() -> dict:
    """Every named workload trace: the vocabulary of ``--workload`` and of
    sweep specifications (``dapp-*``, ``nasdaq-*``, ``native-*``)."""
    registry = {f"dapp-{name}": trace for name, trace in dapp_suite().items()}
    for stock in ("google", "amazon", "facebook", "microsoft", "apple"):
        registry[f"nasdaq-{stock}"] = stock_trace(stock)
    registry["native-100"] = constant_transfer_trace(100)
    registry["native-1000"] = constant_transfer_trace(1_000)
    registry["native-10000"] = constant_transfer_trace(10_000)
    return registry


__all__ = [
    "STOCK_PROFILES",
    "Trace",
    "VISA_AVERAGE_TPS",
    "burst_then_decay",
    "constant_transfer_trace",
    "dapp_suite",
    "deployment_challenge_trace",
    "derived_average_tps",
    "derived_world_tps",
    "dota_trace",
    "expected_peak_tps",
    "fifa_trace",
    "gafam_trace",
    "robustness_trace",
    "schedule_from_rates",
    "sinusoid",
    "stock_trace",
    "uber_trace",
    "workload_registry",
    "youtube_trace",
]
