"""The DIABLO workload suite: five realistic traces plus synthetic loads."""

from repro.workloads.dota2 import dota_trace
from repro.workloads.fifa import fifa_trace
from repro.workloads.nasdaq import (
    STOCK_PROFILES,
    expected_peak_tps,
    gafam_trace,
    stock_trace,
)
from repro.workloads.synthetic import (
    VISA_AVERAGE_TPS,
    constant_transfer_trace,
    deployment_challenge_trace,
    robustness_trace,
)
from repro.workloads.traces import (
    Trace,
    burst_then_decay,
    schedule_from_rates,
    sinusoid,
)
from repro.workloads.uber import derived_world_tps, uber_trace
from repro.workloads.youtube import derived_average_tps, youtube_trace


def dapp_suite() -> dict:
    """The five default DIABLO DApp workloads (Table 2), by name."""
    return {
        "exchange": gafam_trace(),
        "gaming": dota_trace(),
        "web": fifa_trace(),
        "mobility": uber_trace(),
        "video": youtube_trace(),
    }


__all__ = [
    "STOCK_PROFILES",
    "Trace",
    "VISA_AVERAGE_TPS",
    "burst_then_decay",
    "constant_transfer_trace",
    "dapp_suite",
    "deployment_challenge_trace",
    "derived_average_tps",
    "derived_world_tps",
    "dota_trace",
    "expected_peak_tps",
    "fifa_trace",
    "gafam_trace",
    "robustness_trace",
    "schedule_from_rates",
    "sinusoid",
    "stock_trace",
    "uber_trace",
    "youtube_trace",
]
