"""Synthetic workloads: constant-rate native transfers (§6.2, §6.3).

The scalability and robustness experiments stress each chain with native
transfers at a constant rate — 1,000 TPS ("the same order of magnitude as
the average load of the Visa system") and 10,000 TPS.
"""

from __future__ import annotations

from repro.core.spec import LoadSchedule
from repro.workloads.traces import Trace

DEFAULT_DURATION = 120.0
VISA_AVERAGE_TPS = 1_736  # 150M transactions/day (§6.2 footnote)


def constant_transfer_trace(rate: float,
                            duration: float = DEFAULT_DURATION) -> Trace:
    """Native transfers at a constant *rate* for *duration* seconds."""
    return Trace(
        name=f"native-{int(rate)}",
        dapp=None,
        function="transfer",
        schedule=LoadSchedule.constant(rate, duration),
        description=f"native transfers at {rate:.0f} TPS for {duration:.0f} s")


def deployment_challenge_trace() -> Trace:
    """The §6.2 scalability workload: 1,000 TPS for 120 s."""
    return constant_transfer_trace(1_000.0)


def robustness_trace() -> Trace:
    """The §6.3 robustness/DoS workload: 10,000 TPS for 120 s."""
    return constant_transfer_trace(10_000.0)
