"""Workload trace framework.

A :class:`Trace` packages a named workload from the paper's suite (Table 2):
the DApp it drives, the per-second request-rate envelope reconstructed from
the paper's description, and a builder producing the DIABLO workload
specification. Because the paper's raw trace files are not distributable,
each trace module synthesises the published shape — peak rates, durations,
burst/decay profiles — which is all the evaluation uses (DESIGN.md,
substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.core.population import PopulationSpec
from repro.core.spec import (
    AccountSample,
    ContractSample,
    InvokeSpec,
    LoadSchedule,
    TransferSpec,
    WorkloadSpec,
    simple_spec,
)
from repro.econ.fees import FeeSpec
from repro.sim.dos import AdversarySpec

DEFAULT_ACCOUNTS = 2_000


@dataclass(frozen=True)
class Trace:
    """One realistic workload: a DApp plus its request-rate envelope.

    ``fees`` / ``adversary`` let a trace carry an economic model: a trace
    with them set replays the workload against a live fee market (and
    optionally a budget-constrained attacker). Both default off, so
    ordinary traces stay byte-identical to their pre-fee-market runs.
    """

    name: str
    dapp: Optional[str]              # key into CONTRACT_FACTORIES, None=native
    function: str                    # DApp function invoked per request
    args: Tuple = ()
    schedule: LoadSchedule = None    # type: ignore[assignment]
    description: str = ""
    fees: Optional[FeeSpec] = None
    adversary: Optional[AdversarySpec] = None

    def __post_init__(self) -> None:
        if self.schedule is None:
            raise ConfigurationError(f"trace {self.name} needs a schedule")

    @property
    def duration(self) -> float:
        return self.schedule.duration

    @property
    def average_tps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.schedule.total_transactions() / self.duration

    @property
    def peak_tps(self) -> float:
        return max(rate for _, rate in self.schedule.points)

    def spec(self, accounts: int = DEFAULT_ACCOUNTS,
             clients: int = 1) -> WorkloadSpec:
        """The DIABLO workload specification for this trace.

        With ``clients > 1`` the schedule is split evenly, matching the
        paper's example of 3 clients sharing the Dota 2 rate.
        """
        per_client = self.schedule.scaled(1.0 / clients)
        account_sample = AccountSample(accounts)
        if self.dapp is None:
            interaction = TransferSpec(account_sample)
        else:
            interaction = InvokeSpec(account_sample,
                                     ContractSample(self.dapp),
                                     self.function, self.args)
        return simple_spec(interaction, per_client, clients=clients,
                           fees=self.fees, adversary=self.adversary)

    def population_spec(self, users: int,
                        rate_per_user: float = 0.001,
                        accounts: int = DEFAULT_ACCOUNTS,
                        cohort: Optional[int] = None,
                        arrival: str = "poisson") -> WorkloadSpec:
        """The trace as a *population* workload (see docs/SCALE.md).

        The trace's schedule provides the **shape** of the per-user rate
        profile, normalized so its mean is ``rate_per_user`` — the total
        offered load then grows linearly with ``users``, which is what a
        knee-finding sweep over population sizes wants. ``cohort`` users
        (default 1k) are individually tracked; the rest ride the
        aggregate lane.
        """
        if self.average_tps <= 0:
            raise ConfigurationError(
                f"trace {self.name} has no load to normalize")
        per_user = self.schedule.scaled(rate_per_user / self.average_tps)
        account_sample = AccountSample(accounts)
        if self.dapp is None:
            interaction = TransferSpec(account_sample)
        else:
            interaction = InvokeSpec(account_sample,
                                     ContractSample(self.dapp),
                                     self.function, self.args)
        return WorkloadSpec((), fees=self.fees,
                            population=PopulationSpec(
                                users=users, interaction=interaction,
                                load=per_user, cohort=cohort,
                                arrival=arrival))

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "dapp": self.dapp or "native",
            "function": self.function,
            "duration_s": round(self.duration, 1),
            "average_tps": round(self.average_tps, 1),
            "peak_tps": round(self.peak_tps, 1),
            "total_requests": int(self.schedule.total_transactions()),
        }


def schedule_from_rates(rates: Sequence[float],
                        bin_size: float = 1.0) -> LoadSchedule:
    """Build a per-bin piecewise schedule from a rate sequence."""
    points: List[Tuple[float, float]] = []
    last = None
    for i, rate in enumerate(rates):
        rate = float(max(0.0, rate))
        if last is None or rate != last:
            points.append((i * bin_size, rate))
            last = rate
    points.append((len(rates) * bin_size, 0.0))
    return LoadSchedule(tuple(points))


def burst_then_decay(peak: float, floor: float, duration: float,
                     decay_time: float) -> LoadSchedule:
    """A first-second burst of *peak* TPS decaying exponentially to *floor*.

    This is the shape of the per-stock NASDAQ opening workloads: "an
    initial demand of about ... before dropping to 10-60 TPS" (§3).
    """
    seconds = int(round(duration))
    times = np.arange(seconds)
    rates = floor + (peak - floor) * np.exp(-times / decay_time)
    return schedule_from_rates(rates.tolist())


def sinusoid(low: float, high: float, duration: float,
             period: float = 60.0) -> LoadSchedule:
    """Rate oscillating between *low* and *high* (diurnal-ish demand)."""
    seconds = int(round(duration))
    times = np.arange(seconds)
    mid = (low + high) / 2
    amp = (high - low) / 2
    rates = mid + amp * np.sin(2 * np.pi * times / period)
    return schedule_from_rates(rates.tolist())
