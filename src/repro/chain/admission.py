"""Node-side admission control in front of the memory pool.

Real nodes do not hand every wire packet straight to the pool: Solana's TPU
buffers packets ahead of sigverify, geth parks "future" transactions in a
queue, and overloaded nodes shed load at the socket before paying the full
admission path. The :class:`AdmissionController` models that front door:

* while the node is **shedding** (the resource-exhaustion model crossed its
  high-water mark), submissions beyond a small pool-priming target are
  rejected with :class:`~repro.common.errors.NodeOverloadedError` — a typed,
  retryable backpressure signal;
* pool-capacity rejections can be absorbed by a bounded **admission queue**
  that drains into the pool as block production frees space; when the queue
  is also full the original pool error propagates to the client.

Shedding admits just enough traffic to keep the pool primed (a couple of
blocks deep), so an overloaded-but-alive chain keeps committing at capacity
while the excess is turned away cheaply — the §6 behaviour of the chains
that survive sustained overload.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional

from repro.chain.mempool import Mempool
from repro.chain.transaction import Transaction
from repro.common.errors import (
    ConfigurationError,
    MempoolFullError,
    NodeOverloadedError,
    SenderQuotaError,
    UnderpricedError,
)
from repro.obs.metrics import MetricsNamespace, MetricsRegistry


@dataclass(frozen=True)
class AdmissionPolicy:
    """Configuration of the admission path in front of the pool.

    ``queue_capacity``  slots for transactions rejected by a full pool
                        (0 disables queueing; quota rejections never queue
                        because the sender's backlog will not clear soon)
    """

    queue_capacity: int = 0

    def __post_init__(self) -> None:
        if self.queue_capacity < 0:
            raise ConfigurationError(
                f"queue_capacity cannot be negative: {self.queue_capacity}")


class AdmissionController:
    """Typed admission front door for one node's :class:`Mempool`."""

    def __init__(self, mempool: Mempool,
                 policy: AdmissionPolicy = AdmissionPolicy(),
                 metrics: Optional[MetricsNamespace] = None) -> None:
        self.mempool = mempool
        self.policy = policy
        self._queue: Deque[Transaction] = deque()
        self.shedding = False
        self.shed_pool_target: Optional[int] = None
        self._metrics = (metrics if metrics is not None
                         else MetricsRegistry().namespace("admission"))
        self._shed_rejections = self._metrics.counter("shed_rejections")
        self._queued_total = self._metrics.counter("queued")
        self._drained_total = self._metrics.counter("drained")
        self._metrics.gauge("queue_depth", supplier=self._queue.__len__)
        #: lifecycle hook: called with each transaction that enters the
        #: pool *from the queue* (direct admits are visible to the caller
        #: through :meth:`submit`'s return value, drains are not). Only
        #: set when a tracer is attached, so the default path pays nothing.
        self.on_admit: Optional[Callable[[Transaction], None]] = None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- registry views -----------------------------------------------------------

    @property
    def shed_rejections(self) -> int:
        return self._shed_rejections.value

    @property
    def queued_total(self) -> int:
        return self._queued_total.value

    @property
    def drained_total(self) -> int:
        return self._drained_total.value

    # -- shedding ---------------------------------------------------------------

    def set_shedding(self, shedding: bool,
                     pool_target: Optional[int] = None) -> None:
        """Enter/leave load-shedding; *pool_target* primes the pool depth."""
        self.shedding = shedding
        self.shed_pool_target = pool_target if shedding else None

    # -- submission --------------------------------------------------------------

    def submit(self, tx: Transaction) -> str:
        """Admit *tx*; return ``"admitted"`` or ``"queued"``.

        Raises :class:`NodeOverloadedError` when shedding turns the
        transaction away at the door, or the pool's own
        :class:`MempoolFullError` subclass when neither the pool nor the
        admission queue has room.
        """
        if self.shedding:
            target = self.shed_pool_target
            if target is None or len(self.mempool) >= target:
                self._shed_rejections.inc()
                raise NodeOverloadedError(
                    "node is shedding load under memory pressure")
        try:
            self.mempool.add(tx)
        except (SenderQuotaError, UnderpricedError):
            # neither clears by waiting in the queue: a quota rejection
            # needs the sender's backlog to drain, an underpriced one
            # needs the client to come back with a higher bid
            raise
        except MempoolFullError:
            if len(self._queue) >= self.policy.queue_capacity:
                raise
            self._queue.append(tx)
            self._queued_total.inc()
            return "queued"
        return "admitted"

    def drain(self) -> int:
        """Move queued transactions into the pool while it has room."""
        moved = 0
        while self._queue:
            tx = self._queue[0]
            if self.mempool.would_accept(tx) is not None:
                break
            try:
                self.mempool.add(tx)
            except MempoolFullError:
                # the probe is approximate under price-aware admission
                # (byte-budget evictions depend on victim sizes); a pool
                # that still will not take the head stops the drain
                break
            self._queue.popleft()
            moved += 1
            if self.on_admit is not None:
                self.on_admit(tx)
        self._drained_total.inc(moved)
        return moved

    def forget(self, tx: Transaction) -> bool:
        """Drop *tx* from the admission queue (committed/expired elsewhere)."""
        try:
            self._queue.remove(tx)
        except ValueError:
            return False
        return True

    def stats(self) -> Dict[str, int]:
        return {
            "queued": self.queued_total,
            "drained": self.drained_total,
            "queue_depth": len(self._queue),
            "shed_rejections": self.shed_rejections,
        }
