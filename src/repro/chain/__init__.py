"""Blockchain data structures: transactions, blocks, mempool, state, ledger."""

from repro.chain.account import (
    Account,
    AccountFactoryLimits,
    AccountRegistry,
    DEFAULT_INITIAL_BALANCE,
)
from repro.chain.block import Block, GENESIS_PARENT, genesis_block
from repro.chain.ledger import Ledger
from repro.chain.mempool import Mempool, MempoolPolicy
from repro.chain.receipt import Event, ExecStatus, Receipt
from repro.chain.state import ContractStorage, WorldState
from repro.chain.transaction import (
    Transaction,
    TxKind,
    invoke,
    transfer,
)

__all__ = [
    "Account",
    "AccountFactoryLimits",
    "AccountRegistry",
    "Block",
    "ContractStorage",
    "DEFAULT_INITIAL_BALANCE",
    "Event",
    "ExecStatus",
    "GENESIS_PARENT",
    "Ledger",
    "Mempool",
    "MempoolPolicy",
    "Receipt",
    "Transaction",
    "TxKind",
    "WorldState",
    "genesis_block",
    "invoke",
    "transfer",
]
