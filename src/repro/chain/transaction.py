"""Transactions: native transfers and DApp invocations.

These are the two interaction types of the DIABLO blockchain abstraction
(§4): ``transfer_X`` moves X coins between accounts and ``invoke_D_Xs``
invokes DApp D with parameters Xs. Transactions carry the metadata the
evaluated blockchains need: a sequence number (Ethereum/Diem), a fee and gas
limit (London-style dynamic fees), a recent block hash (Solana) and a
signature produced by the sender's scheme.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional, Tuple

from repro.crypto.hashing import digest

_TX_COUNTER = itertools.count()


def reset_tx_counter() -> None:
    """Restart uid allocation at zero.

    Benchmark runs scope transaction uids to themselves (the Primary
    resets before each run) so a run's serialized records are identical
    no matter how many runs the process executed before it — the property
    the sweep cache and the ``--workers N`` byte-identity guarantee rely
    on.
    """
    global _TX_COUNTER
    _TX_COUNTER = itertools.count()

# Baseline payload sizes in bytes. A native transfer is roughly an Ethereum
# legacy transaction; invocations add ABI-encoded call data.
TRANSFER_SIZE = 110
INVOKE_BASE_SIZE = 140


class TxKind(Enum):
    """The two DIABLO interaction types."""

    TRANSFER = "transfer"
    INVOKE = "invoke"


@dataclass(slots=True)
class Transaction:
    """A signed client request.

    ``submitted_at`` / ``committed_at`` are filled in by the DIABLO
    secondaries during a benchmark — they correspond to the submission and
    decision timestamps the Primary aggregates into its JSON output.
    """

    sender: str
    kind: TxKind
    sequence: int = 0
    amount: int = 0
    recipient: Optional[str] = None
    contract: Optional[str] = None
    function: Optional[str] = None
    args: Tuple[Any, ...] = ()
    fee_per_gas: int = 1
    tip: int = 0
    gas_limit: int = 10_000_000
    recent_block_hash: Optional[str] = None
    signature: Optional[str] = None
    extra_size: int = 0
    uid: int = field(default_factory=lambda: next(_TX_COUNTER))

    # benchmark bookkeeping, set by DIABLO components
    submitted_at: Optional[float] = None
    committed_at: Optional[float] = None
    resubmitted_at: Optional[float] = None
    retries: int = 0
    aborted: bool = False
    abort_reason: Optional[str] = None

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Transaction) and other.uid == self.uid

    @property
    def tx_hash(self) -> str:
        """Deterministic content hash (excludes benchmark bookkeeping).

        Same single-update construction as :meth:`signing_payload`;
        byte-identical to the generic ``digest(...)`` form.
        """
        return hashlib.sha256(
            f"tx\x00{self.uid}\x00{self.sender}\x00{self.kind.value}\x00"
            f"{self.sequence}\x00{self.recipient}\x00{self.contract}\x00"
            f"{self.function}\x00{self.args}\x00"
            f"{self.amount}\x00".encode()).hexdigest()

    @property
    def size(self) -> int:
        """Wire size in bytes, used by the network and block-size limits."""
        if self.kind is TxKind.TRANSFER:
            return TRANSFER_SIZE + self.extra_size
        arg_size = sum(32 for _ in self.args)
        return INVOKE_BASE_SIZE + arg_size + self.extra_size

    @property
    def is_invoke(self) -> bool:
        return self.kind is TxKind.INVOKE

    def signing_payload(self) -> str:
        """The string covered by the sender's signature.

        Hot path: one f-string and one hash call. Byte-identical to the
        generic ``digest("payload", sender, kind, ...)`` form (tested in
        tests/chain/test_transaction_fastpath.py) — ``digest`` hashes
        ``str(part) + "\\0"`` per part, and UTF-8 encoding distributes
        over concatenation.
        """
        return hashlib.sha256(
            f"payload\x00{self.sender}\x00{self.kind.value}\x00"
            f"{self.sequence}\x00{self.recipient}\x00{self.contract}\x00"
            f"{self.function}\x00{self.args}\x00{self.amount}\x00"
            f"{self.fee_per_gas}\x00{self.gas_limit}\x00"
            f"{self.recent_block_hash}\x00".encode()).hexdigest()

    def describe(self) -> Dict[str, Any]:
        """Loggable summary dictionary."""
        return {
            "uid": self.uid,
            "kind": self.kind.value,
            "sender": self.sender,
            "sequence": self.sequence,
            "contract": self.contract,
            "function": self.function,
            "submitted_at": self.submitted_at,
            "committed_at": self.committed_at,
            "aborted": self.aborted,
            "abort_reason": self.abort_reason,
        }


def transfer(sender: str, recipient: str, amount: int = 1,
             sequence: int = 0, **kwargs: Any) -> Transaction:
    """Build a native transfer transaction."""
    return Transaction(sender=sender, kind=TxKind.TRANSFER, amount=amount,
                       recipient=recipient, sequence=sequence, **kwargs)


def invoke(sender: str, contract: str, function: str,
           args: Tuple[Any, ...] = (), sequence: int = 0,
           **kwargs: Any) -> Transaction:
    """Build a DApp invocation transaction."""
    return Transaction(sender=sender, kind=TxKind.INVOKE, contract=contract,
                       function=function, args=tuple(args), sequence=sequence,
                       **kwargs)
