"""On-chain state: balances, nonces and contract storage."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.common.errors import UnknownAccountError


@dataclass
class ContractStorage:
    """Key-value storage belonging to one deployed contract instance."""

    data: Dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = 0) -> Any:
        return self.data.get(key, default)

    def put(self, key: str, value: Any) -> None:
        self.data[key] = value

    def size_of(self, key: str) -> int:
        """Approximate byte size of one key-value pair (for AVM limits)."""
        value = self.data.get(key)
        return len(str(key)) + len(str(value)) if value is not None else len(str(key))

    def __len__(self) -> int:
        return len(self.data)


class WorldState:
    """The replicated chain state every validator executes against.

    Balances and nonces live per account; each deployed contract gets its
    own :class:`ContractStorage`. Account creation is implicit on first
    credit, matching the benchmark setup where the genesis allocates funds.
    """

    def __init__(self) -> None:
        self._balances: Dict[str, int] = {}
        self._nonces: Dict[str, int] = {}
        self._contracts: Dict[str, ContractStorage] = {}

    # -- balances -----------------------------------------------------------------

    def balance(self, address: str) -> int:
        return self._balances.get(address, 0)

    def credit(self, address: str, amount: int) -> None:
        self._balances[address] = self._balances.get(address, 0) + amount

    def debit(self, address: str, amount: int) -> bool:
        """Debit if funds suffice; return False otherwise."""
        balance = self._balances.get(address, 0)
        if balance < amount:
            return False
        self._balances[address] = balance - amount
        return True

    def has_account(self, address: str) -> bool:
        return address in self._balances or address in self._nonces

    # -- nonces --------------------------------------------------------------------

    def nonce(self, address: str) -> int:
        return self._nonces.get(address, 0)

    def bump_nonce(self, address: str) -> None:
        self._nonces[address] = self._nonces.get(address, 0) + 1

    # -- contracts -------------------------------------------------------------------

    def deploy_storage(self, contract_address: str) -> ContractStorage:
        if contract_address in self._contracts:
            raise UnknownAccountError(
                f"contract {contract_address!r} already deployed")
        storage = ContractStorage()
        self._contracts[contract_address] = storage
        return storage

    def storage(self, contract_address: str) -> ContractStorage:
        try:
            return self._contracts[contract_address]
        except KeyError:
            raise UnknownAccountError(
                f"contract {contract_address!r} not deployed") from None

    def has_contract(self, contract_address: str) -> bool:
        return contract_address in self._contracts

    def contracts(self) -> Dict[str, ContractStorage]:
        return dict(self._contracts)
