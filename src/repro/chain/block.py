"""Blocks and block headers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.chain.transaction import Transaction
from repro.crypto.hashing import digest, merkle_root


@dataclass
class Block:
    """A block of transactions appended to the chain.

    ``timestamp`` is the virtual time at which the block was decided by
    consensus (the moment polling clients can first observe it locally at the
    proposer). ``gas_used`` is filled in by the executing VM.
    """

    height: int
    parent_hash: str
    proposer: str
    transactions: List[Transaction] = field(default_factory=list)
    timestamp: float = 0.0
    gas_used: int = 0

    _hash: Optional[str] = field(default=None, repr=False)

    @property
    def block_hash(self) -> str:
        if self._hash is None:
            self._hash = digest("block", self.height, self.parent_hash,
                                self.proposer, self.tx_root, self.timestamp)
        return self._hash

    @property
    def tx_root(self) -> str:
        return merkle_root(tx.tx_hash for tx in self.transactions)

    @property
    def size(self) -> int:
        """Wire size in bytes: header plus transaction payloads."""
        return 512 + sum(tx.size for tx in self.transactions)

    def __len__(self) -> int:
        return len(self.transactions)


GENESIS_PARENT = digest("genesis-parent")


def genesis_block(proposer: str = "genesis") -> Block:
    """The height-0 block every simulated chain starts from."""
    return Block(height=0, parent_hash=GENESIS_PARENT, proposer=proposer,
                 timestamp=0.0)
