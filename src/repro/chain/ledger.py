"""The ledger: an append-only chain of blocks with confirmation depth.

Forkable chains (Solana, Ethereum Clique) require clients to wait for
additional appended blocks ("confirmations") before treating a transaction
as final — the paper sets Solana to 30 confirmations (§5.2). The ledger
tracks, for each block, the height at which it reaches a given confirmation
depth, and exposes the polling queries the DIABLO secondaries use.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.common.errors import ChainError
from repro.chain.block import Block, genesis_block
from repro.chain.transaction import Transaction


class Ledger:
    """Append-only block sequence shared by all honest nodes of one chain."""

    def __init__(self, confirmation_depth: int = 0) -> None:
        if confirmation_depth < 0:
            raise ChainError("confirmation depth cannot be negative")
        self.confirmation_depth = confirmation_depth
        genesis = genesis_block()
        self._blocks: List[Block] = [genesis]
        self._by_hash: Dict[str, Block] = {genesis.block_hash: genesis}
        self._decided_at: List[float] = [0.0]
        # virtual time each height became *final* (confirmed); genesis is
        # final immediately
        self._final_at: List[Optional[float]] = [0.0]

    # -- append ---------------------------------------------------------------

    def append(self, block: Block, decided_at: float) -> None:
        """Append a consensus-decided block at the next height."""
        head = self._blocks[-1]
        if block.height != head.height + 1:
            raise ChainError(
                f"expected height {head.height + 1}, got {block.height}")
        if block.parent_hash != head.block_hash:
            raise ChainError("block does not extend the current head")
        self._blocks.append(block)
        self._by_hash[block.block_hash] = block
        self._decided_at.append(decided_at)
        self._final_at.append(None if self.confirmation_depth > 0 else decided_at)
        if self.confirmation_depth > 0:
            # the block confirmation_depth behind the new head becomes final
            confirmed = block.height - self.confirmation_depth
            if confirmed >= 0 and self._final_at[confirmed] is None:
                self._final_at[confirmed] = decided_at

    # -- queries ------------------------------------------------------------------

    @property
    def head(self) -> Block:
        return self._blocks[-1]

    @property
    def height(self) -> int:
        return self._blocks[-1].height

    def block_at(self, height: int) -> Block:
        if height < 0 or height >= len(self._blocks):
            raise ChainError(f"no block at height {height}")
        return self._blocks[height]

    def block_by_hash(self, block_hash: str) -> Block:
        try:
            return self._by_hash[block_hash]
        except KeyError:
            raise ChainError(f"unknown block hash {block_hash!r}") from None

    def decided_at(self, height: int) -> float:
        return self._decided_at[height]

    def final_at(self, height: int) -> Optional[float]:
        """Virtual time the block at *height* became final, None if not yet."""
        if height < 0 or height >= len(self._blocks):
            raise ChainError(f"no block at height {height}")
        return self._final_at[height]

    def blocks_since(self, height: int) -> Iterator[Block]:
        """Blocks strictly above *height* (the secondary polling query)."""
        for h in range(height + 1, len(self._blocks)):
            yield self._blocks[h]

    def recent_hash_age(self, block_hash: str, now: float) -> float:
        """Age in seconds of the block carrying *block_hash* (Solana rule)."""
        block = self.block_by_hash(block_hash)
        return now - self._decided_at[block.height]

    def total_transactions(self) -> int:
        return sum(len(b) for b in self._blocks)

    def all_transactions(self) -> Iterator[Transaction]:
        for block in self._blocks:
            yield from block.transactions
