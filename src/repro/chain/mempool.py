"""Memory pool with the admission/drop policies the paper attributes results to.

Three policies matter in the evaluation:

* **bounded + per-sender quota** (Diem): nodes accept at most 100 pending
  transactions per signer and a bounded total; excess transactions are
  dropped during load peaks (§6.5), which protects the node from collapsing
  under constant overload (§6.3).
* **effectively unbounded** (Quorum/IBFT): "historically designed to never
  drop a client request" — commits everything under bursts (§6.5) but
  saturates and collapses under constant 10 kTPS load (§6.3).
* **fee-ordered bounded** (Ethereum-style): admission prefers higher fees;
  underpriced transactions linger or are evicted.

Every rejection and eviction path records a typed drop reason in
:attr:`Mempool.drops`, and resident bytes are tracked alongside resident
transactions so the resource-exhaustion model (and ``max_bytes`` policies)
can account for pool memory.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.errors import (
    MempoolBytesError,
    MempoolFullError,
    SenderQuotaError,
    UnderpricedError,
)
from repro.chain.transaction import Transaction
from repro.obs.metrics import MetricsNamespace, MetricsRegistry

#: Canonical drop-reason tags recorded by the pool.
DROP_CAPACITY = "capacity"
DROP_QUOTA = "sender_quota"
DROP_BYTES = "bytes"
DROP_EVICTED = "evicted"
DROP_EXPIRED = "expired"
DROP_UNDERPRICED = "underpriced"
DROP_FEE_EVICTED = "fee_evicted"


@dataclass(frozen=True)
class MempoolPolicy:
    """Configuration of a node's memory pool.

    ``capacity``            maximum resident transactions (None = unbounded)
    ``per_sender_quota``    maximum pending per signer (None = unbounded)
    ``evict_oldest``        when full, evict the oldest instead of rejecting
    ``fee_ordered``         pop highest-fee transactions first
    ``max_bytes``           maximum resident wire bytes (None = unbounded)
    """

    capacity: Optional[int] = None
    per_sender_quota: Optional[int] = None
    evict_oldest: bool = False
    fee_ordered: bool = False
    max_bytes: Optional[int] = None


class Mempool:
    """FIFO (or fee-ordered) transaction pool with admission control."""

    def __init__(self, policy: MempoolPolicy = MempoolPolicy(),
                 metrics: Optional[MetricsNamespace] = None) -> None:
        self.policy = policy
        self._pool: "OrderedDict[int, Transaction]" = OrderedDict()
        self._per_sender: Dict[str, int] = defaultdict(int)
        # counters live in a metrics namespace (the experiment's shared
        # registry when the pool belongs to a chain, a private one
        # otherwise) so timeseries sampling sees them under mempool.*
        self._metrics = (metrics if metrics is not None
                         else MetricsRegistry().namespace("mempool"))
        self._admitted = self._metrics.counter("admitted")
        self._resident_bytes = self._metrics.gauge("resident_bytes")
        self._metrics.gauge("resident", supplier=self._pool.__len__)
        self.last_drop_reason: Optional[str] = None
        # a fee market (duck-typed: floor() and effective_price(tx)) makes
        # admission price-aware: underpriced transactions are rejected and
        # pressure evicts the cheapest resident instead of the oldest.
        # None — the benign default — leaves every code path untouched.
        self.pricer = None
        #: called with each fee-evicted victim (the network uses it to
        #: route the victim through the client retry/fee-bump path)
        self.on_evict: Optional[Callable[[Transaction], None]] = None

    # -- registry views ----------------------------------------------------------

    @property
    def admitted(self) -> int:
        """Transactions ever admitted into the pool."""
        return self._admitted.value

    @property
    def resident_bytes(self) -> int:
        """Wire bytes of the currently resident transactions."""
        return self._resident_bytes.value

    @property
    def drops(self) -> Dict[str, int]:
        """Per-reason counters for every transaction turned away/thrown out."""
        return self._metrics.counters_with_prefix("drops")

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, tx: Transaction) -> bool:
        return tx.uid in self._pool

    def pending_for(self, sender: str) -> int:
        return self._per_sender.get(sender, 0)

    # -- legacy counter views ---------------------------------------------------

    @property
    def rejected_full(self) -> int:
        return self.drops.get(DROP_CAPACITY, 0)

    @property
    def rejected_quota(self) -> int:
        return self.drops.get(DROP_QUOTA, 0)

    @property
    def evicted(self) -> int:
        return (self.drops.get(DROP_EVICTED, 0)
                + self.drops.get(DROP_EXPIRED, 0))

    # -- admission ---------------------------------------------------------------

    def _count_drop(self, reason: str) -> None:
        self._metrics.counter(f"drops.{reason}").inc()
        self.last_drop_reason = reason

    def would_accept(self, tx: Transaction) -> Optional[str]:
        """Drop reason :meth:`add` would record for *tx*, or None if it fits.

        A pure probe: no counters move and nothing is evicted, so admission
        front ends can test for room without generating phantom drops.
        """
        if (self.pricer is not None
                and self.pricer.effective_price(tx) < self.pricer.floor()):
            return DROP_UNDERPRICED
        quota = self.policy.per_sender_quota
        if quota is not None and self._per_sender[tx.sender] >= quota:
            return DROP_QUOTA
        cap = self.policy.capacity
        if cap is not None and len(self._pool) >= cap:
            if self.pricer is not None:
                victim = self._cheapest()
                if (victim is None
                        or self.pricer.effective_price(victim)
                        >= self.pricer.effective_price(tx)):
                    return DROP_UNDERPRICED
            elif not self.policy.evict_oldest:
                return DROP_CAPACITY
        max_bytes = self.policy.max_bytes
        if (max_bytes is not None
                and self.resident_bytes + tx.size > max_bytes
                and not self.policy.evict_oldest
                and self.pricer is None):
            return DROP_BYTES
        return None

    def add(self, tx: Transaction) -> None:
        """Admit a transaction or raise a :class:`MempoolFullError` subclass."""
        if (self.pricer is not None
                and self.pricer.effective_price(tx) < self.pricer.floor()):
            self._count_drop(DROP_UNDERPRICED)
            raise UnderpricedError(
                f"price {self.pricer.effective_price(tx)} below fee floor"
                f" {self.pricer.floor()}")
        quota = self.policy.per_sender_quota
        if quota is not None and self._per_sender[tx.sender] >= quota:
            self._count_drop(DROP_QUOTA)
            raise SenderQuotaError(
                f"sender {tx.sender} has {quota} pending transactions")
        cap = self.policy.capacity
        if cap is not None and len(self._pool) >= cap:
            if self.pricer is not None:
                # price-based replacement: the incoming transaction must
                # strictly outbid the cheapest resident to displace it
                victim = self._cheapest()
                incoming = self.pricer.effective_price(tx)
                if (victim is None
                        or self.pricer.effective_price(victim) >= incoming):
                    self._count_drop(DROP_UNDERPRICED)
                    raise UnderpricedError(
                        f"price {incoming} cannot displace any of the"
                        f" {len(self._pool)} resident transactions")
                self._evict_victim(victim, DROP_FEE_EVICTED)
            elif self.policy.evict_oldest:
                self._evict_one()
            else:
                self._count_drop(DROP_CAPACITY)
                raise MempoolFullError(
                    f"mempool at capacity ({cap} transactions)")
        max_bytes = self.policy.max_bytes
        if max_bytes is not None and self.resident_bytes + tx.size > max_bytes:
            if self.pricer is not None:
                incoming = self.pricer.effective_price(tx)
                while self.resident_bytes + tx.size > max_bytes:
                    victim = self._cheapest()
                    if (victim is None
                            or self.pricer.effective_price(victim) >= incoming):
                        break
                    self._evict_victim(victim, DROP_FEE_EVICTED)
            elif self.policy.evict_oldest:
                while (self._pool
                       and self.resident_bytes + tx.size > max_bytes):
                    self._evict_one()
            if self.resident_bytes + tx.size > max_bytes:
                self._count_drop(DROP_BYTES)
                raise MempoolBytesError(
                    f"mempool byte budget exhausted ({max_bytes} bytes)")
        self._pool[tx.uid] = tx
        self._per_sender[tx.sender] += 1
        self._resident_bytes.add(tx.size)
        self._admitted.inc()

    def try_add(self, tx: Transaction) -> bool:
        """Admit a transaction, returning False instead of raising.

        Rejections are recorded in :attr:`drops` exactly as for :meth:`add`;
        the reason of the last failure is in :attr:`last_drop_reason`.
        """
        try:
            self.add(tx)
        except MempoolFullError:
            return False
        return True

    def _evict_one(self) -> None:
        uid, victim = self._pool.popitem(last=False)
        self._per_sender[victim.sender] -= 1
        self._resident_bytes.add(-victim.size)
        self._count_drop(DROP_EVICTED)

    def _cheapest(self) -> Optional[Transaction]:
        """The resident transaction with the lowest effective price."""
        if not self._pool:
            return None
        return min(self._pool.values(),
                   key=lambda t: (self.pricer.effective_price(t), t.uid))

    def _evict_victim(self, victim: Transaction, reason: str) -> None:
        del self._pool[victim.uid]
        self._per_sender[victim.sender] -= 1
        self._resident_bytes.add(-victim.size)
        self._count_drop(reason)
        if self.on_evict is not None and reason == DROP_FEE_EVICTED:
            self.on_evict(victim)

    def price_floor(self) -> int:
        """The effective per-gas price admission currently requires.

        The fee model's floor, raised to the cheapest resident's price
        while the pool is at capacity (an incoming transaction must
        strictly outbid it to get in). Zero without a pricer.
        """
        if self.pricer is None:
            return 0
        floor = self.pricer.floor()
        cap = self.policy.capacity
        if cap is not None and len(self._pool) >= cap and self._pool:
            cheapest = self._cheapest()
            floor = max(floor, self.pricer.effective_price(cheapest))
        return floor

    # -- removal ---------------------------------------------------------------

    def pop_batch(self, max_count: Optional[int] = None,
                  max_gas: Optional[int] = None,
                  max_bytes: Optional[int] = None) -> List[Transaction]:
        """Remove and return transactions for the next block.

        Selection is FIFO unless ``fee_ordered`` is set, bounded by any of a
        transaction count, a cumulative gas limit (using each transaction's
        gas limit as its reservation, as block builders do) and a cumulative
        byte size.
        """
        if self.pricer is not None:
            candidates = sorted(
                self._pool.values(),
                key=lambda t: (-self.pricer.effective_price(t), t.uid))
        elif self.policy.fee_ordered:
            candidates = sorted(
                self._pool.values(),
                key=lambda t: (-(t.fee_per_gas + t.tip), t.uid))
        else:
            candidates = list(self._pool.values())
        batch: List[Transaction] = []
        gas_total = 0
        byte_total = 0
        for tx in candidates:
            if max_count is not None and len(batch) >= max_count:
                break
            if max_gas is not None and gas_total + tx.gas_limit > max_gas:
                if batch:
                    break
                # a single oversized transaction still fits alone so block
                # production cannot deadlock on it
            if (max_bytes is not None and byte_total + tx.size > max_bytes
                    and batch):
                break
            batch.append(tx)
            gas_total += tx.gas_limit
            byte_total += tx.size
        for tx in batch:
            del self._pool[tx.uid]
            self._per_sender[tx.sender] -= 1
            self._resident_bytes.add(-tx.size)
        return batch

    def remove(self, tx: Transaction) -> bool:
        """Remove a specific transaction (e.g. committed via another node)."""
        if tx.uid not in self._pool:
            return False
        del self._pool[tx.uid]
        self._per_sender[tx.sender] -= 1
        self._resident_bytes.add(-tx.size)
        return True

    def drop_expired(self, now: float, max_age: float) -> List[Transaction]:
        """Drop transactions submitted more than *max_age* seconds ago.

        A resubmitted transaction (client retry with a refreshed recent
        block hash) ages from its latest resubmission, not its original
        submission — matching how Solana clients refresh blockhash recency.
        """
        def age_base(tx: Transaction) -> Optional[float]:
            return (tx.resubmitted_at if tx.resubmitted_at is not None
                    else tx.submitted_at)

        expired = [tx for tx in self._pool.values()
                   if age_base(tx) is not None
                   and now - age_base(tx) > max_age]
        for tx in expired:
            self.remove(tx)
            self._count_drop(DROP_EXPIRED)
        return expired

    # -- observability -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Admission/drop counters for benchmark results."""
        stats: Dict[str, int] = {
            "admitted": self.admitted,
            "resident": len(self._pool),
            "resident_bytes": self.resident_bytes,
        }
        for reason, count in sorted(self.drops.items()):
            stats[f"drop_{reason}"] = count
        return stats
