"""Memory pool with the admission/drop policies the paper attributes results to.

Three policies matter in the evaluation:

* **bounded + per-sender quota** (Diem): nodes accept at most 100 pending
  transactions per signer and a bounded total; excess transactions are
  dropped during load peaks (§6.5), which protects the node from collapsing
  under constant overload (§6.3).
* **effectively unbounded** (Quorum/IBFT): "historically designed to never
  drop a client request" — commits everything under bursts (§6.5) but
  saturates and collapses under constant 10 kTPS load (§6.3).
* **fee-ordered bounded** (Ethereum-style): admission prefers higher fees;
  underpriced transactions linger or are evicted.
"""

from __future__ import annotations

from collections import OrderedDict, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import MempoolFullError, SenderQuotaError
from repro.chain.transaction import Transaction


@dataclass(frozen=True)
class MempoolPolicy:
    """Configuration of a node's memory pool.

    ``capacity``            maximum resident transactions (None = unbounded)
    ``per_sender_quota``    maximum pending per signer (None = unbounded)
    ``evict_oldest``        when full, evict the oldest instead of rejecting
    ``fee_ordered``         pop highest-fee transactions first
    """

    capacity: Optional[int] = None
    per_sender_quota: Optional[int] = None
    evict_oldest: bool = False
    fee_ordered: bool = False


class Mempool:
    """FIFO (or fee-ordered) transaction pool with admission control."""

    def __init__(self, policy: MempoolPolicy = MempoolPolicy()) -> None:
        self.policy = policy
        self._pool: "OrderedDict[int, Transaction]" = OrderedDict()
        self._per_sender: Dict[str, int] = defaultdict(int)
        self.admitted = 0
        self.rejected_full = 0
        self.rejected_quota = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._pool)

    def __contains__(self, tx: Transaction) -> bool:
        return tx.uid in self._pool

    def pending_for(self, sender: str) -> int:
        return self._per_sender.get(sender, 0)

    # -- admission ---------------------------------------------------------------

    def add(self, tx: Transaction) -> None:
        """Admit a transaction or raise a :class:`MempoolFullError` subclass."""
        quota = self.policy.per_sender_quota
        if quota is not None and self._per_sender[tx.sender] >= quota:
            self.rejected_quota += 1
            raise SenderQuotaError(
                f"sender {tx.sender} has {quota} pending transactions")
        cap = self.policy.capacity
        if cap is not None and len(self._pool) >= cap:
            if self.policy.evict_oldest:
                self._evict_one()
            else:
                self.rejected_full += 1
                raise MempoolFullError(
                    f"mempool at capacity ({cap} transactions)")
        self._pool[tx.uid] = tx
        self._per_sender[tx.sender] += 1
        self.admitted += 1

    def try_add(self, tx: Transaction) -> bool:
        """Admit a transaction, returning False instead of raising."""
        try:
            self.add(tx)
        except MempoolFullError:
            return False
        return True

    def _evict_one(self) -> None:
        uid, victim = self._pool.popitem(last=False)
        self._per_sender[victim.sender] -= 1
        self.evicted += 1

    # -- removal ---------------------------------------------------------------

    def pop_batch(self, max_count: Optional[int] = None,
                  max_gas: Optional[int] = None,
                  max_bytes: Optional[int] = None) -> List[Transaction]:
        """Remove and return transactions for the next block.

        Selection is FIFO unless ``fee_ordered`` is set, bounded by any of a
        transaction count, a cumulative gas limit (using each transaction's
        gas limit as its reservation, as block builders do) and a cumulative
        byte size.
        """
        if self.policy.fee_ordered:
            candidates = sorted(
                self._pool.values(),
                key=lambda t: (-(t.fee_per_gas + t.tip), t.uid))
        else:
            candidates = list(self._pool.values())
        batch: List[Transaction] = []
        gas_total = 0
        byte_total = 0
        for tx in candidates:
            if max_count is not None and len(batch) >= max_count:
                break
            if max_gas is not None and gas_total + tx.gas_limit > max_gas:
                if batch:
                    break
                # a single oversized transaction still fits alone so block
                # production cannot deadlock on it
            if (max_bytes is not None and byte_total + tx.size > max_bytes
                    and batch):
                break
            batch.append(tx)
            gas_total += tx.gas_limit
            byte_total += tx.size
        for tx in batch:
            del self._pool[tx.uid]
            self._per_sender[tx.sender] -= 1
        return batch

    def remove(self, tx: Transaction) -> bool:
        """Remove a specific transaction (e.g. committed via another node)."""
        if tx.uid not in self._pool:
            return False
        del self._pool[tx.uid]
        self._per_sender[tx.sender] -= 1
        return True

    def drop_expired(self, now: float, max_age: float) -> List[Transaction]:
        """Drop transactions submitted more than *max_age* seconds ago.

        A resubmitted transaction (client retry with a refreshed recent
        block hash) ages from its latest resubmission, not its original
        submission — matching how Solana clients refresh blockhash recency.
        """
        def age_base(tx: Transaction) -> Optional[float]:
            return (tx.resubmitted_at if tx.resubmitted_at is not None
                    else tx.submitted_at)

        expired = [tx for tx in self._pool.values()
                   if age_base(tx) is not None
                   and now - age_base(tx) > max_age]
        for tx in expired:
            self.remove(tx)
        self.evicted += len(expired)
        return expired
