"""Accounts and the account registry.

DIABLO pre-creates a population of funded accounts before a benchmark (the
``!account { number: 2000 }`` sample in the workload DSL) and the secondaries
pre-sign transactions from them. Diem's setup tooling, as the paper reports,
fails after creating 130 accounts — the Diem chain model enforces the same
cap through :class:`AccountFactoryLimits`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.common.errors import DeploymentError, UnknownAccountError
from repro.crypto.signing import ECDSA, SignatureScheme, keypair

DEFAULT_INITIAL_BALANCE = 10**18


@dataclass
class Account:
    """A funded account with its key pair and a client-side sequence number."""

    address: str
    private_key: str
    public_key: str
    balance: int = DEFAULT_INITIAL_BALANCE
    sequence: int = 0

    def next_sequence(self) -> int:
        """Allocate the next client-side sequence number (nonce)."""
        value = self.sequence
        self.sequence += 1
        return value


@dataclass(frozen=True)
class AccountFactoryLimits:
    """Provisioning constraints of a chain's account tooling."""

    max_accounts: Optional[int] = None  # Diem: 130 (paper §5.2)


class AccountRegistry:
    """Creates and looks up the benchmark's account population."""

    def __init__(self, scheme: SignatureScheme = ECDSA,
                 limits: AccountFactoryLimits = AccountFactoryLimits(),
                 namespace: str = "acct") -> None:
        self.scheme = scheme
        self.limits = limits
        self.namespace = namespace
        self._accounts: Dict[str, Account] = {}
        self._ordered: List[Account] = []

    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self) -> Iterator[Account]:
        return iter(self._ordered)

    def create(self, count: int,
               initial_balance: int = DEFAULT_INITIAL_BALANCE) -> List[Account]:
        """Create *count* new funded accounts.

        Raises :class:`DeploymentError` when the chain's provisioning limit
        would be exceeded, mirroring Diem's systematic failure after 130
        accounts.
        """
        cap = self.limits.max_accounts
        if cap is not None and len(self._ordered) + count > cap:
            raise DeploymentError(
                f"account factory limit reached: {len(self._ordered)} existing"
                f" + {count} requested > {cap} allowed")
        created = []
        for _ in range(count):
            index = len(self._ordered)
            address = f"{self.namespace}-{index}"
            private_key, public_key = keypair(address)
            account = Account(address, private_key, public_key,
                              balance=initial_balance)
            self._accounts[address] = account
            self._ordered.append(account)
            created.append(account)
        return created

    def create_up_to(self, count: int,
                     initial_balance: int = DEFAULT_INITIAL_BALANCE) -> List[Account]:
        """Create as many accounts as the provisioning limit allows.

        This is how the paper's authors worked around the Diem limit: "we
        restricted the number of accounts to 130 in the community and
        consortium configurations".
        """
        cap = self.limits.max_accounts
        if cap is not None:
            count = min(count, cap - len(self._ordered))
        if count <= 0:
            return []
        return self.create(count, initial_balance)

    def get(self, address: str) -> Account:
        try:
            return self._accounts[address]
        except KeyError:
            raise UnknownAccountError(f"no such account: {address!r}") from None

    def addresses(self) -> List[str]:
        return [a.address for a in self._ordered]
