"""Execution receipts and contract events.

Receipts mirror the Ethereum model: per-transaction execution outcome, gas
used, and the events (logs) the contract emitted — the Exchange and YouTube
DApps of the paper emit events on success.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple


class ExecStatus(Enum):
    """Outcome of executing a transaction inside a block."""

    SUCCESS = "success"
    REVERTED = "reverted"          # contract require() failed
    OUT_OF_GAS = "out_of_gas"      # exhausted the gas sent with the tx
    BUDGET_EXCEEDED = "budget_exceeded"  # hit the VM's hard budget (§6.4)
    INVALID = "invalid"            # bad nonce/signature/balance


@dataclass(frozen=True)
class Event:
    """A contract event (log entry)."""

    contract: str
    name: str
    payload: Tuple[Any, ...] = ()


@dataclass
class Receipt:
    """Result of executing one transaction."""

    tx_uid: int
    status: ExecStatus
    gas_used: int = 0
    block_height: Optional[int] = None
    return_value: Any = None
    error: Optional[str] = None
    events: List[Event] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status is ExecStatus.SUCCESS

    def describe(self) -> Dict[str, Any]:
        return {
            "tx_uid": self.tx_uid,
            "status": self.status.value,
            "gas_used": self.gas_used,
            "block_height": self.block_height,
            "error": self.error,
            "events": len(self.events),
        }
