"""Simulated cryptography: deterministic hashing and cost-modeled signing."""

from repro.crypto.hashing import digest, hash_cost, merkle_root
from repro.crypto.signing import (
    ECDSA,
    ED25519,
    RSA4096,
    SCHEMES,
    SignatureScheme,
    keypair,
)

__all__ = [
    "ECDSA",
    "ED25519",
    "RSA4096",
    "SCHEMES",
    "SignatureScheme",
    "digest",
    "hash_cost",
    "keypair",
    "merkle_root",
]
