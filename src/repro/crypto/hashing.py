"""Deterministic hashing used for block/transaction identifiers.

Real blockchains hash serialized payloads; here we hash stable string
representations. The point is not cryptographic strength but determinism and
collision-freedom, plus a CPU cost model so hashing load shows up in the
simulated machines.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

# CPU seconds to hash one kilobyte on a c5-class core. SHA-256 runs at
# roughly 500 MB/s per core, i.e. ~2 microseconds per KB.
HASH_COST_PER_KB = 2e-6


def digest(*parts: object) -> str:
    """Deterministic 64-hex-char digest of the given parts."""
    h = hashlib.sha256()
    for part in parts:
        h.update(str(part).encode())
        h.update(b"\x00")
    return h.hexdigest()


def merkle_root(leaves: Iterable[str]) -> str:
    """Merkle root over the given leaf digests (pairwise sha256).

    An odd leaf at any level is promoted by hashing it with itself, as in
    Bitcoin-style trees. The empty tree has a well-defined root.
    """
    level = [digest(leaf) for leaf in leaves]
    if not level:
        return digest("empty-merkle-tree")
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [digest(level[i], level[i + 1])
                 for i in range(0, len(level), 2)]
    return level[0]


def hash_cost(size_bytes: int) -> float:
    """CPU seconds to hash *size_bytes* of data."""
    return max(0, size_bytes) / 1024 * HASH_COST_PER_KB
