"""Quorum — IBFT consensus on the geth EVM (§5.2).

"Quorum [12] is a blockchain initiated by J.P. Morgan ... we exclusively run
Quorum with IBFT in our experiments." IBFT is a deterministic leader-based
BFT protocol that was "historically designed to never drop a client
request" (§6.5) — the mempool is unbounded — which makes Quorum commit every
transaction of every NASDAQ burst but collapse to zero under a constant
10,000 TPS load (§6.3): the growing resident pool inflates proposal times
until rounds outlive the IBFT round timer and round-change cascades starve
the chain.

Calibration (see EXPERIMENTS.md): the per-block transaction cap and the
pool-management overhead reproduce ~500 TPS at 13 s latency in the
community configuration (Fig. 3) and the Fig. 4 collapse.
"""

from __future__ import annotations

from repro.chain.mempool import MempoolPolicy
from repro.consensus.models import LeaderBFTPerf, WanProfile
from repro.crypto.signing import ECDSA
from repro.blockchains.base import ChainParams, OverloadPolicy
from repro.econ.fees import FeePolicy
from repro.sim.deployment import DeploymentConfig

# Quorum genesis files for benchmarking use very large block gas limits;
# what binds in practice is geth's block building + IBFT round time.
BLOCK_GAS_LIMIT = 2_500_000_000
BLOCK_TX_LIMIT = 1_200
POOL_OVERHEAD_PER_TX = 12e-6
ROUND_TIMEOUT = 10.0


def _perf(profile: WanProfile) -> LeaderBFTPerf:
    return LeaderBFTPerf(
        profile,
        phases=2,                      # PREPARE + COMMIT after dissemination
        base_overhead=0.06,
        pool_overhead_per_tx=POOL_OVERHEAD_PER_TX,
        round_timeout=ROUND_TIMEOUT,
        per_node_overhead=3e-3,
        overload_gamma=0.12,
        payload_floor=0.0,             # nothing stops the collapse
        min_block_interval=0.8)   # IBFT block period


def params(deployment: DeploymentConfig) -> ChainParams:
    """Quorum's chain parameters (identical across deployments)."""
    return ChainParams(
        name="quorum",
        consensus_name="IBFT",
        properties="deterministic",
        vm_name="geth-evm",
        dapp_language="Solidity",
        signature_scheme=ECDSA,
        block_gas_limit=BLOCK_GAS_LIMIT,
        block_tx_limit=BLOCK_TX_LIMIT,
        mempool_policy=MempoolPolicy(capacity=None),  # never drops requests
        confirmation_depth=0,          # immediate finality (§6.2)
        commit_api="stream",           # web-socket streaming head (§5.2)
        exec_parallelism=4.0,
        # never dropping a request means the unbounded pool itself exhausts
        # memory under constant overload; rounds starve and IBFT stops
        # committing (the Fig. 4 collapse to zero)
        # GoQuorum inherits geth's fee market; permissioned
        # deployments typically run it near the floor
        fee_policy=FeePolicy(dialect="eip1559", min_fee=1),
        overload=OverloadPolicy(
            response="commit_stall",
            pool_tx_bytes=16 * 1024,
            consensus_tx_bytes=8 * 1024),
        perf_model=_perf)
