"""Ethereum — Clique proof-of-authority on geth (§5.2).

The paper runs geth with Clique because proof-of-work "inherently limits
its throughput (to the amount of gas allowed per block divided by the block
period)" — and that quotient still binds under Clique: a fixed period
between blocks and a per-block gas limit. Clique can fork under message
delays [16], so clients wait extra confirmations.

Calibration: a 5-second period with a ~1.5M-gas block reproduces the
observations — Ethereum commits a trickle in every experiment ("keep
committing transactions until the end of the experiment", §6.5), needs
~118 s to finish the 800-transaction Google burst, commits ~64 % of the
Microsoft burst, and manages ~0.1 % of a 10 kTPS constant load (§6.3).
"""

from __future__ import annotations

from repro.chain.mempool import MempoolPolicy
from repro.consensus.models import CliquePerf, WanProfile
from repro.crypto.signing import ECDSA
from repro.blockchains.base import ChainParams, OverloadPolicy
from repro.econ.fees import FeePolicy
from repro.sim.deployment import DeploymentConfig

BLOCK_PERIOD = 5.0
BLOCK_GAS_LIMIT = 3_000_000
CONFIRMATIONS = 3
TXPOOL_CAPACITY = 50_000   # geth --txpool.globalslots + queue


def _perf(profile: WanProfile) -> CliquePerf:
    return CliquePerf(profile, period=BLOCK_PERIOD, overload_gamma=0.05)


def params(deployment: DeploymentConfig) -> ChainParams:
    """Ethereum/Clique chain parameters (identical across deployments)."""
    return ChainParams(
        name="ethereum",
        consensus_name="Clique",
        properties="eventual",
        vm_name="geth-evm",
        dapp_language="Solidity",
        signature_scheme=ECDSA,
        block_gas_limit=BLOCK_GAS_LIMIT,
        mempool_policy=MempoolPolicy(capacity=TXPOOL_CAPACITY,
                                     evict_oldest=True),
        confirmation_depth=CONFIRMATIONS,
        commit_api="stream",
        exec_parallelism=1.0,          # geth executes blocks single-threaded
        # geth survives sustained overload by turning submissions away
        # cheaply at the txpool door and keeps "committing transactions
        # until the end of the experiment" (§6.5) — a trickle, but alive
        # the London fee market: dynamic base fee over a
        # 3M-gas block, priority tips break ties
        fee_policy=FeePolicy(dialect="eip1559"),
        overload=OverloadPolicy(
            response="shed_load",
            consensus_tx_bytes=16 * 1024),
        perf_model=_perf)
