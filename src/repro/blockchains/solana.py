"""Solana — Tower BFT over Proof of History, eBPF runtime (§5.2).

Solana appends a block every 400 ms; "the verifiable delay function ...
puts away all communication steps but a broadcast", so the block cadence is
configuration-independent — what scales with hardware is how many
transactions a validator can ingest and execute per slot. The Solana team
confirmed to the authors that c5.xlarge instances "have insufficient
resources" (Acknowledgments): the per-slot intake here scales with the
node's vCPUs, giving ~9,000 TPS on the 36-vCPU datacenter machines (the
8,845 TPS of Table 1) and ~1,000 TPS on 4-vCPU nodes — why Solana still
"handles a 1000 TPS constant workload for all configurations" (§6.2).

Finality: Solana "may fork and needs to wait for 30 confirmations ...
before a stored transaction can be considered final" — 30 x 0.4 s = 12 s,
exactly the paper's observed average latency. Transactions must embed a
block hash "created less than 120 seconds before the transaction request is
received"; transactions stuck in the pool longer than that expire.
"""

from __future__ import annotations

from repro.chain.mempool import MempoolPolicy
from repro.consensus.models import PoHPerf, WanProfile
from repro.crypto.signing import ED25519
from repro.blockchains.base import ChainParams, OverloadPolicy
from repro.econ.fees import FeePolicy
from repro.sim.deployment import DeploymentConfig

SLOT_DURATION = 0.4
CONFIRMATIONS = 30           # §5.2, [24]
BLOCKHASH_MAX_AGE = 120.0    # §5.2
GAS_PER_VCPU_PER_SLOT = 2_730_000  # intake scales with cores (~130 transfers)
INGESTION_QUEUE = 2_600      # leader TPU packet buffer under bursts


def _perf(profile: WanProfile) -> PoHPerf:
    return PoHPerf(profile, slot_duration=SLOT_DURATION, overload_gamma=0.45)


def params(deployment: DeploymentConfig) -> ChainParams:
    """Solana chain parameters (per-slot intake scales with the hardware)."""
    return ChainParams(
        name="solana",
        consensus_name="TowerBFT",
        properties="eventual",
        vm_name="ebpf",
        dapp_language="Solidity",   # via the Solang->eBPF toolchain
        signature_scheme=ED25519,
        block_gas_per_vcpu=GAS_PER_VCPU_PER_SLOT,
        mempool_policy=MempoolPolicy(capacity=INGESTION_QUEUE),
        confirmation_depth=CONFIRMATIONS,
        commit_api="stream",        # commitment-level web-socket subscription
        tx_expiry=BLOCKHASH_MAX_AGE,
        exec_parallelism=6.0,       # Sealevel parallel runtime
        # Solana validators OOM-crash under sustained saturation (§6: the
        # NASDAQ peak); the heavy per-transaction artifacts (gossip dedup,
        # fork/vote bookkeeping, accounts-db growth) dominate
        # flat signature fee plus a first-price priority-fee
        # auction for leader-schedule blockspace
        fee_policy=FeePolicy(dialect="auction", min_fee=5, default_tip=0),
        overload=OverloadPolicy(
            response="oom_crash",
            pool_tx_bytes=8 * 1024,
            consensus_tx_bytes=32 * 1024,
            state_tx_bytes=10 * 1024),
        perf_model=_perf)
