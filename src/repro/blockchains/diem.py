"""Diem — chained HotStuff consensus on the MoveVM (§5.2).

Two quirks the paper documents shape every Diem result:

* "Diem nodes only accept a maximum of 100 transactions from the same
  signer in their memory pool" — the per-sender quota;
* the account provisioning tools "fail systematically after creating 130
  accounts", so community/consortium runs use only 130 accounts.

Diem is tuned for low round-trip times: it posts the best throughput
(> 982 TPS) and the lowest latency (<= 2 s) of all six chains, but only in
the single-datacenter configurations (§6.2). Under 10x overload its
throughput divides by ten (§6.3): the bounded mempool saturates and the
pool-management overhead throttles proposals — but the same bound is what
keeps it alive (unlike Quorum).
"""

from __future__ import annotations

from repro.chain.account import AccountFactoryLimits
from repro.chain.mempool import MempoolPolicy
from repro.consensus.models import LeaderBFTPerf, WanProfile
from repro.crypto.signing import ED25519
from repro.blockchains.base import ChainParams, OverloadPolicy
from repro.econ.fees import FeePolicy
from repro.sim.deployment import DeploymentConfig

BLOCK_TX_LIMIT = 700
MEMPOOL_CAPACITY = 12_000
PER_SENDER_QUOTA = 100
ACCOUNT_PROVISIONING_LIMIT = 130


def _perf(profile: WanProfile) -> LeaderBFTPerf:
    return LeaderBFTPerf(
        profile,
        phases=3,                    # HotStuff's chained phases...
        pipeline_depth=3.0,          # ...overlap across consecutive blocks
        base_overhead=0.18,
        admission_cpu_per_tx=100e-6,
        per_node_overhead=1e-3,   # HotStuff communication is linear in n
        # Diem's pacemaker is tuned for datacenter round trips: rounds that
        # outlive ~1 s trigger a view change, which is why Diem underperforms
        # on high-RTT networks (§6.2: "optimized to run on network setups
        # with a low round-trip time")
        round_timeout=1.0,
        overload_gamma=0.5,          # stress is bounded by the mempool cap;
        # together with the admission overhead and the pacemaker timeout
        # this reproduces the paper's "divided by 10" under 10x load
        min_block_interval=0.15)


def params(deployment: DeploymentConfig) -> ChainParams:
    """Diem's chain parameters for *deployment*.

    The 130-account provisioning cap applies at the 200-node scales, where
    the authors could not work around it by retrying the setup tools.
    """
    large = deployment.node_count >= 200
    limits = AccountFactoryLimits(
        max_accounts=ACCOUNT_PROVISIONING_LIMIT if large else None)
    return ChainParams(
        name="diem",
        consensus_name="HotStuff",
        properties="deterministic",
        vm_name="move-vm",
        dapp_language="Move",
        signature_scheme=ED25519,
        block_tx_limit=BLOCK_TX_LIMIT,
        mempool_policy=MempoolPolicy(capacity=MEMPOOL_CAPACITY,
                                     per_sender_quota=PER_SENDER_QUOTA),
        confirmation_depth=0,
        commit_api="stream",
        account_limits=limits,
        exec_parallelism=4.0,
        # under constant 10x load Diem stops committing (§6.3): the bounded
        # pool keeps the node alive, but pool-management churn (every
        # rejected submission still pays the admission path) accumulates in
        # consensus buffers until progress halts
        # Diem charges gas with a dynamic congestion price
        # (modeled with the same controller as London)
        fee_policy=FeePolicy(dialect="eip1559"),
        overload=OverloadPolicy(
            response="commit_stall",
            consensus_tx_bytes=16 * 1024),
        perf_model=_perf)
