"""Avalanche — Snowball/DAG consensus, C-Chain geth EVM (§5.2).

The evaluation uses the C-Chain (EVM) with no subnets. Two facts dominate
its numbers: "Avalanche limits the gas per block to 8M gas and seems to
require a period between blocks of at least 1.9 seconds", so its transfer
throughput tops out around 8M / 21k / 1.9 ~ 200 TPS regardless of hardware
— the paper's conjecture that "Avalanche throttles its throughput" (§6.2,
confirmed in §6.3 when 10x load *raises* throughput by 1.38x as blocks pack
closer to the gas limit). Snowball polling adds its beta rounds of gossip
to the commit latency, and the backlog queueing produces the observed
average latencies in the tens of seconds (49 s in Table 1).

The authors fell back from the recommended RSA4096 signatures to ECDSA
because RSA signing "was taking too long" — the signing cost difference is
in :mod:`repro.crypto.signing` and exercised by an ablation benchmark.
"""

from __future__ import annotations

from repro.chain.mempool import MempoolPolicy
from repro.consensus.models import DAGPerf, WanProfile
from repro.crypto.signing import ECDSA
from repro.blockchains.base import ChainParams, OverloadPolicy
from repro.econ.fees import FeePolicy
from repro.sim.deployment import DeploymentConfig

BLOCK_GAS_LIMIT = 8_000_000   # §5.2
BLOCK_PERIOD = 1.9            # §5.2
SNOWBALL_BETA = 12


def _perf(profile: WanProfile) -> DAGPerf:
    return DAGPerf(profile, beta=SNOWBALL_BETA, block_period=BLOCK_PERIOD,
                   overload_gamma=-0.06, packing_cap=1.8)


def params(deployment: DeploymentConfig) -> ChainParams:
    """Avalanche C-Chain parameters (identical across deployments)."""
    return ChainParams(
        name="avalanche",
        consensus_name="Avalanche",
        properties="probabilistic",
        vm_name="geth-evm",
        dapp_language="Solidity",
        signature_scheme=ECDSA,
        block_gas_limit=BLOCK_GAS_LIMIT,
        mempool_policy=MempoolPolicy(capacity=None),
        confirmation_depth=0,         # probabilistic finality at acceptance
        commit_api="stream",
        exec_parallelism=1.0,
        # the throttled block cadence bounds intake; excess load is shed at
        # the node and throughput even improves as blocks pack tighter (§6.3)
        # the C-chain of the paper's era ran a fixed 25-nAVAX
        # gas price (dynamic fees came later)
        fee_policy=FeePolicy(dialect="flat", min_fee=25),
        overload=OverloadPolicy(
            response="shed_load",
            consensus_tx_bytes=8 * 1024),
        perf_model=_perf)
