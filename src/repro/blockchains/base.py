"""The simulated blockchain runtime.

A :class:`BlockchainNetwork` assembles, for one chain in one deployment
configuration, everything the paper's evaluation exercises:

* validator machines in their regions (Table 3) with CPU accounting;
* a memory pool with the chain's admission/drop policy (§5.2 quirks:
  Diem's 100-transactions-per-signer quota, Solana's 120-second recent
  block hash window — modeled as pool expiry — Ethereum/Avalanche fee
  dynamics);
* the chain's virtual machine executing every transaction of every block
  (real receipts, real gas, real budget failures);
* an analytic consensus performance model (:mod:`repro.consensus.models`)
  driving block cadence, decision latency and overload behaviour;
* a ledger applying the chain's confirmation depth (Solana: 30);
* the client-visible commit-detection path (web-socket streaming vs block
  polling vs blocking calls, §5.2).

Transactions carry their DIABLO submit/commit timestamps, so a benchmark
run produces exactly the per-transaction records the paper's Primary
aggregates.

Scaling: an :class:`ExperimentScale` of ``s`` shrinks offered rates and all
rate-like capacities (block payload caps, mempool bounds) by ``s`` while
inflating per-transaction CPU and wire size by ``1/s``, preserving every
dimensionless ratio (utilisation, stress, blocks-per-second). DESIGN.md
documents this as the laptop-scale substitution; ``REPRO_SCALE=1`` runs
full scale.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.chain.account import AccountFactoryLimits, AccountRegistry
from repro.chain.admission import AdmissionController, AdmissionPolicy
from repro.chain.block import Block
from repro.chain.ledger import Ledger
from repro.chain.mempool import Mempool, MempoolPolicy
from repro.chain.receipt import ExecStatus, Receipt
from repro.chain.state import WorldState
from repro.chain.transaction import Transaction
from repro.common.errors import (
    BackpressureError,
    ChainError,
    ConfigurationError,
    DeploymentError,
    MempoolFullError,
    NodeOverloadedError,
)
from repro.common.rng import RngFactory
from repro.consensus.models import (
    BlockAttempt,
    ConsensusPerfModel,
    WanProfile,
)
from repro.crypto.signing import ECDSA, SignatureScheme
from repro.econ.fees import FeePolicy, FeeSpec, build_fee_model
from repro.econ.market import FeeMarket
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullTracer
from repro.sim.deployment import DeploymentConfig
from repro.sim.engine import Engine
from repro.sim.faults import FaultInjector
from repro.sim.machine import Machine
from repro.sim.network import Endpoint
from repro.vm.base import VirtualMachine
from repro.vm.machines import VM_FACTORIES
from repro.vm.program import Contract


def default_scale() -> float:
    """Experiment scale factor from the ``REPRO_SCALE`` environment."""
    return float(os.environ.get("REPRO_SCALE", "0.1"))


@dataclass(frozen=True)
class ExperimentScale:
    """Linear scale transform for laptop-sized runs (see module docstring)."""

    factor: float = 0.1

    def __post_init__(self) -> None:
        if not 0 < self.factor <= 1:
            raise ConfigurationError(
                f"scale factor must be in (0, 1], got {self.factor}")

    def rate(self, tps: float) -> float:
        """Scale an offered rate."""
        return tps * self.factor

    def capacity(self, value: Optional[int]) -> Optional[int]:
        """Scale a rate-like capacity (block caps, mempool bounds)."""
        if value is None:
            return None
        return max(1, int(round(value * self.factor)))

    def inflate_cpu(self, seconds: float) -> float:
        """Inflate per-transaction CPU so utilisation is preserved."""
        return seconds / self.factor

    def inflate_bytes(self, size: int) -> int:
        """Inflate per-transaction wire size so block bytes are preserved."""
        return int(size / self.factor)


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry/timeout/backoff behaviour (§5.2 client loops).

    Mirrors what the paper's real client implementations do under stress:
    Algorand clients poll and retry rejected submissions; Solana clients
    refresh the recent block hash and resubmit when a transaction falls out
    of the 120-second recency window. Backoff is exponential with
    multiplicative jitter drawn from the experiment's seeded RNG, so retry
    traffic is reproducible and never synchronises into a storm.

    ``max_attempts``        total submission attempts per transaction (>= 1)
    ``base_delay``          backoff before the first retry, seconds
    ``multiplier``          exponential growth factor per attempt
    ``max_delay``           backoff ceiling, seconds
    ``jitter``              +/- fraction of the delay randomised away
    ``resubmit_on_expiry``  re-sign and resubmit pool-expired transactions
    ``fee_bump``            price multiplier applied per resubmission (1.0
                            resends the identical payload — the default).
                            Without a bump, retries re-enter a congested
                            fee-ordered pool at the tail and starve; geth
                            requires a >= 10% bump to even replace a tx.
    ``fee_bump_cap``        ceiling on the cumulative bump, as a multiple
                            of the transaction's original price
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1
    resubmit_on_expiry: bool = True
    fee_bump: float = 1.0
    fee_bump_cap: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.fee_bump < 1.0:
            raise ConfigurationError(
                f"fee_bump must be >= 1.0, got {self.fee_bump}")
        if self.fee_bump_cap < 1.0:
            raise ConfigurationError(
                f"fee_bump_cap must be >= 1.0, got {self.fee_bump_cap}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ConfigurationError(
                f"need 0 <= base_delay <= max_delay, got"
                f" {self.base_delay}/{self.max_delay}")
        if self.multiplier < 1:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if not 0 <= self.jitter < 1:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, attempt: int, rng) -> float:
        """Delay before submission attempt ``attempt + 1`` (attempt >= 1)."""
        delay = min(self.max_delay,
                    self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter > 0:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(0.0, delay)


@dataclass(frozen=True)
class OverloadPolicy:
    """How a chain's nodes respond to resource exhaustion (§6 under load).

    Each node's memory ledger is charged three ways, all in unscaled units
    so the model is invariant under the experiment scale transform:

    * ``pool_tx_bytes`` resident bytes per pending pool transaction;
    * ``consensus_tx_bytes`` *undecayed* backlog per transaction that
      entered the full admission path but never left through a block —
      retry churn, gossip dedup sets, unpruned forks/votes, pool
      bookkeeping. This is the term that grows without bound under
      sustained saturation (the §6.3 collapse mechanism);
    * ``state_tx_bytes`` ledger/state growth per transaction sealed into a
      block.

    ``response`` is what happens once pressure crosses ``high_water``:

    * ``"oom_crash"``   the node fail-stops (Solana validators during the
                        NASDAQ peak, §6); per-node ``oom_jitter`` staggers
                        the crashes;
    * ``"commit_stall"`` the node stops proposing/committing but stays up
                        (Diem ceasing to commit, §6);
    * ``"shed_load"``   admission sheds submissions beyond a small pool
                        target until pressure drops below ``low_water``
                        (the chains that survive sustained overload);
    * ``"none"``        resource exhaustion is not modeled.
    """

    response: str = "none"
    high_water: float = 0.9
    low_water: float = 0.75
    pool_tx_bytes: int = 4 * 1024
    consensus_tx_bytes: int = 8 * 1024
    state_tx_bytes: int = 512
    oom_jitter: float = 0.05
    shed_pool_blocks: float = 2.0

    def __post_init__(self) -> None:
        if self.response not in ("oom_crash", "commit_stall", "shed_load",
                                 "none"):
            raise ConfigurationError(f"bad overload response {self.response!r}")
        if not 0 < self.low_water <= self.high_water <= 1.0:
            raise ConfigurationError(
                f"need 0 < low_water <= high_water <= 1,"
                f" got {self.low_water}/{self.high_water}")
        if min(self.pool_tx_bytes, self.consensus_tx_bytes,
               self.state_tx_bytes) < 0:
            raise ConfigurationError("per-transaction bytes cannot be negative")
        if not 0 <= self.oom_jitter < 0.5:
            raise ConfigurationError(
                f"oom_jitter must be in [0, 0.5), got {self.oom_jitter}")
        if self.shed_pool_blocks <= 0:
            raise ConfigurationError("shed_pool_blocks must be positive")


@dataclass(frozen=True)
class ChainParams:
    """Everything configurable about one blockchain (Table 4 + §5.2)."""

    name: str
    consensus_name: str
    properties: str                      # "deterministic"/"probabilistic"/"eventual"
    vm_name: str                         # key into VM_FACTORIES
    dapp_language: str
    signature_scheme: SignatureScheme = ECDSA
    block_gas_limit: Optional[int] = None
    block_tx_limit: Optional[int] = None
    block_gas_per_vcpu: Optional[int] = None  # Solana: CPU-bound intake
    block_bytes_limit: Optional[int] = None
    mempool_policy: MempoolPolicy = field(default_factory=MempoolPolicy)
    confirmation_depth: int = 0
    commit_api: str = "stream"           # "stream" | "poll" | "blocking"
    poll_interval: float = 1.0
    tx_expiry: Optional[float] = None    # Solana's 120 s blockhash window
    account_limits: AccountFactoryLimits = field(
        default_factory=AccountFactoryLimits)
    exec_parallelism: float = 1.0        # execution threads (geth: ~1)
    gossip_hop: float = 0.08             # client tx -> proposer gossip delay
    retry_policy: Optional[RetryPolicy] = None  # client retries (off = 1 shot)
    fee_policy: Optional[FeePolicy] = None  # fee dialect (inert until fees: on)
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    overload: OverloadPolicy = field(default_factory=OverloadPolicy)
    perf_model: Callable[[WanProfile], ConsensusPerfModel] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.commit_api not in ("stream", "poll", "blocking"):
            raise ConfigurationError(f"bad commit_api {self.commit_api!r}")
        if self.perf_model is None:
            raise ConfigurationError(f"{self.name}: perf_model is required")


@dataclass(slots=True)
class SubmissionResult:
    """Outcome of handing one transaction to a node."""

    accepted: bool
    reason: Optional[str] = None
    will_retry: bool = False   # rejected now, but a client retry is scheduled


class BlockchainNetwork:
    """One chain deployed in one configuration, running on the engine."""

    def __init__(self, params: ChainParams, deployment: DeploymentConfig,
                 engine: Engine, scale: Optional[ExperimentScale] = None,
                 seed: int = 0) -> None:
        self.params = params
        self.deployment = deployment
        self.engine = engine
        self.scale = scale or ExperimentScale(default_scale())
        self.rng = RngFactory(seed).child("chain", params.name)
        self.endpoints: List[Endpoint] = deployment.endpoints(
            prefix=f"{params.name}-node")
        # per-node memory headroom jitter staggers OOM crashes over time as
        # pressure rises (validators do not all die at the same instant)
        if params.overload.response == "oom_crash" and params.overload.oom_jitter:
            margin_rng = self.rng.stream("overload", "oom-margin")
            margins = [1.0 + params.overload.oom_jitter
                       * (2.0 * float(margin_rng.random()) - 1.0)
                       for _ in self.endpoints]
        else:
            margins = [1.0] * len(self.endpoints)
        #: experiment-wide metrics registry: the pool, admission front door,
        #: validator machines and the chain's own counters all register here
        #: so one sampler pass sees the whole chain under dotted names
        self.metrics = MetricsRegistry()
        self.machines: List[Machine] = [
            Machine(engine, ep, deployment.instance_type, memory_margin=margin,
                    metrics=self.metrics.namespace(f"machine.{ep.name}"))
            for ep, margin in zip(self.endpoints, margins)]
        self.profile = WanProfile([ep.region for ep in self.endpoints])
        self.model = params.perf_model(self.profile)
        self.vm: VirtualMachine = VM_FACTORIES[params.vm_name]()
        self.state = WorldState()
        self.ledger = Ledger(confirmation_depth=params.confirmation_depth)
        policy = replace(
            params.mempool_policy,
            capacity=self.scale.capacity(params.mempool_policy.capacity),
            per_sender_quota=self.scale.capacity(
                params.mempool_policy.per_sender_quota))
        self.mempool = Mempool(policy,
                               metrics=self.metrics.namespace("mempool"))
        queue_capacity = params.admission.queue_capacity
        if queue_capacity:
            queue_capacity = self.scale.capacity(queue_capacity)
        admission = replace(params.admission, queue_capacity=queue_capacity)
        self.admission = AdmissionController(
            self.mempool, admission,
            metrics=self.metrics.namespace("admission"))
        # resource-exhaustion model (§6 crash-under-load)
        self.overload = params.overload
        for machine in self.machines:
            machine.memory.high_water = self.overload.high_water
            machine.memory.low_water = self.overload.low_water
        self.memory_pressure = 0.0
        self.peak_memory_pressure = 0.0
        self.overload_events: List[Dict[str, Any]] = []
        self._overload_stalled = False
        self._shedding = False
        self._admission_processed = 0   # arrivals through the full path
        self._pipeline_exits = 0        # transactions sealed into blocks
        self.last_arrival_at: Optional[float] = None
        self.accounts = AccountRegistry(params.signature_scheme,
                                        params.account_limits,
                                        namespace=f"{params.name}-acct")
        # block payload caps, unscaled (the per-block pop scales them)
        gas_cap = params.block_gas_limit
        if params.block_gas_per_vcpu is not None:
            # CPU-bound block intake (Solana): the per-slot payload scales
            # with the validator's core count — the reason the Solana team
            # calls c5.xlarge "insufficient" (Acknowledgments)
            cpu_cap = params.block_gas_per_vcpu * deployment.instance_type.vcpus
            gas_cap = cpu_cap if gas_cap is None else min(gas_cap, cpu_cap)
        self._gas_cap_unscaled = gas_cap
        self._gas_cap = self.scale.capacity(gas_cap)
        self._tx_cap_unscaled = params.block_tx_limit
        self._tx_cap = self.scale.capacity(params.block_tx_limit)
        self._bytes_cap = params.block_bytes_limit  # bytes already inflated
        # arrival-rate tracking for the admission-overhead term
        self._arrival_window = 5.0
        self._arrivals: List[Tuple[float, int]] = []
        self._leader_cursor = 0
        self._last_round_latency = 0.1
        self._producing = False
        #: while set, the chain keeps its block cadence through idle gaps
        #: instead of stopping and paying a restart delay per burst
        self.active_until: Optional[float] = None
        self.receipts: Dict[int, Receipt] = {}
        self.committed: List[Transaction] = []
        self.dropped: List[Transaction] = []
        # chain-level counters live in the shared registry (legacy attribute
        # names remain available as read-only properties below)
        chain_metrics = self.metrics.namespace("chain")
        self._chain_metrics = chain_metrics
        self._blocks_failed = chain_metrics.counter("blocks_failed")
        self._view_changes = chain_metrics.counter("view_changes")
        chain_metrics.gauge("height", supplier=lambda: self.ledger.height)
        chain_metrics.gauge("committed_total",
                            supplier=lambda: len(self.committed))
        chain_metrics.gauge("dropped_total",
                            supplier=lambda: len(self.dropped))
        chain_metrics.gauge("memory_pressure",
                            supplier=lambda: self.memory_pressure)
        self._committed_height = 0
        self._commit_listeners: List[Callable[[Transaction], None]] = []
        self._drop_listeners: List[Callable[[Transaction], None]] = []
        # fault injection + client retries
        self.injector: Optional[FaultInjector] = None
        #: byzantine adversary schedule (repro.sim.byzantine); None = benign
        self.byzantine_schedule: Optional[Any] = None
        # block attempts denied an honest quorum by the adversary
        self._byzantine_stalled_blocks = chain_metrics.counter(
            "byzantine_stalled_blocks")
        # production rounds skipped: no live quorum
        self._stalled_rounds = chain_metrics.counter("stalled_rounds")
        # retry-policy override installed by :meth:`attach_fees`
        # (fee-bumping); None defers to the chain params live, so code
        # adjusting ``self.params`` after construction still takes effect
        self._retry_policy_override: Optional[RetryPolicy] = None
        #: live fee market; None (the default) keeps every fee code path
        #: inert — attach one with :meth:`attach_fees`
        self.fee_market: Optional[FeeMarket] = None
        # original (fee_per_gas, tip) per retried tx, anchoring the
        # fee-bump cap across resubmissions
        self._fee_anchors: Dict[int, Tuple[int, int]] = {}
        #: senders whose retries keep their original price (the DoS
        #: adversary bids for itself; bumping would break its budget
        #: reservations)
        self.fee_bump_exempt: frozenset = frozenset()
        self._retry_rng = self.rng.stream("client", "retry-jitter")
        self._attempts: Dict[int, int] = {}
        #: arrivals per non-client submission lane (e.g. ``"aggregate"``
        #: for a population's untracked users — see repro.core.population).
        #: Stays empty on classic runs so their stats remain byte-identical.
        self.lane_arrivals: Dict[str, int] = {}
        self._retries_scheduled = chain_metrics.counter("retries_scheduled")
        self._retries_succeeded = chain_metrics.counter("retries_succeeded")
        #: lifecycle tracer; None = tracing fully off (the default), every
        #: hook site is guarded so the untraced path does no extra work
        self.tracer: Optional[NullTracer] = None

    # -- registry views -------------------------------------------------------------

    @property
    def drop_reasons(self) -> Dict[str, int]:
        """Per-reason counts of client-visible drops."""
        return self._chain_metrics.counters_with_prefix("drops")

    @property
    def blocks_failed(self) -> int:
        return self._blocks_failed.value

    @property
    def view_changes_total(self) -> int:
        return self._view_changes.value

    @property
    def stalled_rounds(self) -> int:
        return self._stalled_rounds.value

    @property
    def retries_scheduled(self) -> int:
        return self._retries_scheduled.value

    @property
    def retries_succeeded(self) -> int:
        return self._retries_succeeded.value

    # -- tracing --------------------------------------------------------------------

    def attach_tracer(self, tracer: NullTracer) -> None:
        """Attach a lifecycle tracer to this chain's pipeline.

        Also hooks the admission queue's drain path so transactions that
        enter the pool from the backpressure queue get their admission
        timestamp (direct admits are stamped in :meth:`submit`).
        """
        self.tracer = tracer
        self.admission.on_admit = (
            lambda tx: tracer.tx_admitted(tx, self.engine.now))

    # -- fault injection ----------------------------------------------------------

    def attach_faults(self, injector: FaultInjector) -> None:
        """Drive this chain's nodes with *injector*'s fault schedule."""
        self.injector = injector
        injector.register(self.engine)

    def attach_byzantine(self, schedule: Any) -> None:
        """Degrade this chain's analytic model per a Byzantine schedule.

        Each sealed block samples the schedule's active adversarial
        fraction and applies the model's quorum-formation penalties
        (``ConsensusPerfModel.apply_byzantine``); fractions at or beyond
        the model's tolerance fail the attempt, so the block returns to
        the pool until the adversary stops. An empty (or ``None``)
        schedule detaches — the benign path is untouched.
        """
        if schedule is None or len(schedule) == 0:
            self.byzantine_schedule = None
            return
        self.byzantine_schedule = schedule
        if self.tracer is not None:
            from repro.sim.byzantine import byzantine_event_kind
            for index, event in enumerate(schedule):
                self.tracer.adversary_window(
                    index, byzantine_event_kind(event),
                    event.start, event.stop, event.node)

    # -- fee market ---------------------------------------------------------------

    @property
    def retry_policy(self) -> Optional[RetryPolicy]:
        """Effective client retry policy.

        The chain's own (read live off ``params``) unless
        :meth:`attach_fees` upgraded it with fee-bumping.
        """
        if self._retry_policy_override is not None:
            return self._retry_policy_override
        return self.params.retry_policy

    def _fee_gas_target(self, policy: FeePolicy) -> int:
        """Per-block gas target (scaled units) for the base-fee controller."""
        if self._gas_cap is not None:
            cap = self._gas_cap
        elif self._tx_cap is not None:
            cap = self._tx_cap * 21_000
        else:
            cap = self.scale.capacity(self.reference_block_txs() * 21_000)
        return max(1, cap // policy.elasticity)

    def attach_fees(self, spec: FeeSpec) -> None:
        """Activate this chain's fee market per the workload's ``fees:`` spec.

        Builds the chain's declared :class:`FeePolicy` (EIP-1559 default)
        with the spec's overrides, makes mempool admission price-aware,
        and upgrades the client retry policy to fee-bump resubmissions.
        Never called for workloads without a ``fees:`` section, so benign
        runs stay byte-identical.
        """
        policy = spec.applied_to(self.params.fee_policy)
        model = build_fee_model(policy, self._fee_gas_target(policy))
        self.fee_market = FeeMarket(model, self.metrics.namespace("fees"))
        self.mempool.pricer = model
        self.mempool.on_evict = self._on_fee_evicted
        retry = self.retry_policy if self.retry_policy is not None else RetryPolicy()
        updates: Dict[str, Any] = {
            "fee_bump": spec.fee_bump, "fee_bump_cap": spec.fee_bump_cap}
        if spec.retry_attempts is not None:
            updates["max_attempts"] = spec.retry_attempts
        self._retry_policy_override = replace(retry, **updates)

    def _on_fee_evicted(self, tx: Transaction) -> None:
        """An underpriced resident was priced out of the pool under pressure.

        Routed through the client retry path: the owner re-bids with a
        fee bump after backoff, exactly like any other rejection; with
        retries exhausted the eviction becomes a client-visible drop.
        """
        attempt = max(1, self._attempts.get(tx.uid, 1))
        if not self._schedule_retry(tx, attempt):
            self._record_drop(tx, "fee_evicted")

    def _node_available(self, index: int) -> bool:
        if self.injector is None:
            return True
        return self.injector.node_available(
            index, self.endpoints[index].region)

    def _commit_quorum(self) -> int:
        """Live, connected validators needed to commit: n - f."""
        n = len(self.endpoints)
        return n - (n - 1) // 3

    def _quorum_available(self) -> bool:
        if self.injector is None:
            return True
        largest = self.injector.largest_side_available(
            list(range(len(self.endpoints))),
            [ep.region for ep in self.endpoints])
        return largest >= self._commit_quorum()

    # -- setup ---------------------------------------------------------------------

    def create_accounts(self, count: int) -> None:
        """Provision funded benchmark accounts (§4: the !account sample).

        Chains with provisioning limits (Diem) cap the population instead of
        failing the whole benchmark, mirroring the authors' workaround.
        """
        self.accounts.create_up_to(count)
        if len(self.accounts) == 0:
            raise DeploymentError(f"{self.params.name}: no accounts created")
        for account in self.accounts:
            self.state.credit(account.address, account.balance)

    def deploy_contract(self, contract: Contract) -> None:
        """Deploy a DApp before the benchmark starts (done by the Primary)."""
        self.vm.deploy(self.state, contract)

    # -- reference block capacity (for overload stress computation) ----------------------

    def reference_block_txs(self) -> int:
        """Nominal transactions per block, in unscaled units."""
        estimates = []
        if self._tx_cap_unscaled is not None:
            estimates.append(self._tx_cap_unscaled)
        if self._gas_cap_unscaled is not None:
            estimates.append(max(1, self._gas_cap_unscaled // 21_000))
        return min(estimates) if estimates else 10_000

    def _record_arrivals(self, count: int) -> None:
        self._arrivals.append((self.engine.now, count))

    def arrival_rate(self) -> float:
        """Recent client submission rate in unscaled TPS."""
        now = self.engine.now
        horizon = now - self._arrival_window
        while self._arrivals and self._arrivals[0][0] < horizon:
            self._arrivals.pop(0)
        if not self._arrivals:
            return 0.0
        window = max(1.0, now - self._arrivals[0][0])
        total = sum(count for _, count in self._arrivals)
        return total / window / self.scale.factor

    # -- submission ------------------------------------------------------------------------

    def submit(self, tx: Transaction, submitted_at: Optional[float] = None) -> SubmissionResult:
        """A client hands *tx* to its collocated node.

        The transaction reaches the proposer's pool one gossip hop later;
        admission control applies the chain's mempool policy — including the
        backpressure front door (load shedding, admission queue). With a
        :class:`RetryPolicy` configured, a rejected submission schedules a
        backed-off client retry instead of dropping immediately; the
        transaction only counts as dropped once its attempts are exhausted.
        """
        now = self.engine.now
        attempt = self._attempts.get(tx.uid, 0) + 1
        self._attempts[tx.uid] = attempt
        if attempt == 1:
            tx.submitted_at = submitted_at if submitted_at is not None else now
        else:
            tx.resubmitted_at = now
            tx.retries = attempt - 1
        self._record_arrivals(1)
        self.last_arrival_at = now
        if self.tracer is not None:
            self.tracer.tx_submit(tx, now, attempt)
        try:
            status = self.admission.submit(tx)
        except NodeOverloadedError as exc:
            # shed at the door: the node rejected cheaply, before paying the
            # admission path, so no churn is charged against its memory
            will_retry = self._schedule_retry(tx, attempt)
            if self.tracer is not None:
                self.tracer.tx_rejected(tx, now, "shed_load", will_retry)
            if will_retry:
                return SubmissionResult(False, str(exc), will_retry=True)
            self._record_drop(tx, "shed_load")
            return SubmissionResult(False, str(exc))
        except (MempoolFullError, BackpressureError) as exc:
            self._admission_processed += 1
            will_retry = self._schedule_retry(tx, attempt)
            if self.tracer is not None:
                self.tracer.tx_rejected(tx, now, type(exc).__name__,
                                        will_retry)
            if will_retry:
                return SubmissionResult(False, str(exc), will_retry=True)
            self._record_drop(tx, type(exc).__name__)
            return SubmissionResult(False, str(exc))
        self._admission_processed += 1
        if attempt > 1:
            self._retries_succeeded.inc()
        if self.tracer is not None:
            if status == "queued":
                self.tracer.tx_queued(tx, now)
            else:
                self.tracer.tx_admitted(tx, now)
        self._ensure_production()
        return SubmissionResult(True)

    def _record_drop(self, tx: Transaction, reason: str) -> None:
        """Single point where a transaction becomes a client-visible drop.

        Tags the reason (mempool admission vs pool expiry vs execution
        failure) so availability analysis can tell them apart, and keeps
        per-reason counters for :meth:`stats`.
        """
        tx.aborted = True
        tx.abort_reason = reason
        self.dropped.append(tx)
        self._chain_metrics.counter(f"drops.{reason}").inc()
        if self.tracer is not None:
            self.tracer.tx_dropped(tx, self.engine.now, reason)
        for listener in self._drop_listeners:
            listener(tx)

    # -- client retries -----------------------------------------------------------

    def _schedule_retry(self, tx: Transaction, attempt: int) -> bool:
        """Back off and resubmit *tx* if the retry policy allows another try."""
        policy = self.retry_policy
        if policy is None or attempt >= policy.max_attempts:
            return False
        delay = policy.backoff(attempt, self._retry_rng)
        self._retries_scheduled.inc()
        self.engine.schedule_after(delay, lambda: self._retry(tx),
                                   label=f"{self.params.name}-retry")
        return True

    def _retry(self, tx: Transaction) -> None:
        if tx.aborted or tx.committed_at is not None or tx in self.mempool:
            return
        if self.fee_market is not None:
            self._bump_fee(tx)
        if self.params.tx_expiry is not None:
            # a resubmitting client re-reads the chain head first, exactly
            # the Solana recent-blockhash refresh loop (§5.2)
            tx.recent_block_hash = self.ledger.head.block_hash
        self.submit(tx)

    def _bump_fee(self, tx: Transaction) -> None:
        """Raise *tx*'s bid before resubmission, within the cumulative cap.

        The cap anchors to the transaction's *original* price, so repeated
        retries converge to ``original * fee_bump_cap`` instead of growing
        without bound.
        """
        policy = self.retry_policy
        if policy is None or policy.fee_bump <= 1.0:
            return
        if tx.sender in self.fee_bump_exempt:
            return
        anchor = self._fee_anchors.setdefault(tx.uid, (tx.fee_per_gas, tx.tip))
        cap_fee = max(anchor[0],
                      int(math.ceil(anchor[0] * policy.fee_bump_cap)))
        cap_tip = max(anchor[1],
                      int(math.ceil(max(anchor[1], 1) * policy.fee_bump_cap)))
        tx.fee_per_gas = min(cap_fee, max(
            tx.fee_per_gas + 1,
            int(math.ceil(tx.fee_per_gas * policy.fee_bump))))
        tx.tip = min(cap_tip, max(
            tx.tip + 1,
            int(math.ceil(max(tx.tip, 1) * policy.fee_bump))))

    def attempts_for(self, tx: Transaction) -> int:
        """Submission attempts recorded for *tx* (1 = no retries)."""
        return self._attempts.get(tx.uid, 0)

    def submit_batch(self, txs: Sequence[Transaction],
                     lane: str = "client") -> int:
        """Submit many transactions at the current instant; return #accepted.

        Fast lane for the Secondary's per-tick batch: per-transaction
        behaviour identical to :meth:`submit` (attempt bookkeeping,
        admission outcomes, retry scheduling in the same calendar order,
        production kick), with the invariant work hoisted — one arrival
        record covering the whole batch, counter increments accumulated
        across the loop, and no :class:`SubmissionResult` allocations.
        Batching the arrival record is safe because
        :meth:`arrival_rate` only sums counts per timestamp, and the
        batched counters are only read from block-production events.
        With a tracer attached the batch falls back to per-transaction
        :meth:`submit` so trace events keep their exact shape.

        ``lane`` names the submission lane for arrival attribution:
        ``"client"`` (the default) is untagged; any other lane — the
        population layer submits its untracked users as ``"aggregate"``
        — accumulates in :attr:`lane_arrivals` and surfaces as an
        ``arrivals_<lane>`` stat. Admission treats every lane the same.
        """
        if lane != "client" and txs:
            self.lane_arrivals[lane] = (
                self.lane_arrivals.get(lane, 0) + len(txs))
        if self.tracer is not None:
            accepted = 0
            for tx in txs:
                if self.submit(tx).accepted:
                    accepted += 1
            return accepted
        count = len(txs)
        if count == 0:
            return 0
        now = self.engine.now
        attempts = self._attempts
        admission_submit = self.admission.submit
        schedule_retry = self._schedule_retry
        record_drop = self._record_drop
        self._record_arrivals(count)
        self.last_arrival_at = now
        accepted = 0
        processed = 0
        retried_ok = 0
        for tx in txs:
            uid = tx.uid
            attempt = attempts.get(uid, 0) + 1
            attempts[uid] = attempt
            if attempt == 1:
                tx.submitted_at = now
            else:
                tx.resubmitted_at = now
                tx.retries = attempt - 1
            try:
                admission_submit(tx)
            except NodeOverloadedError:
                if not schedule_retry(tx, attempt):
                    record_drop(tx, "shed_load")
                continue
            except (MempoolFullError, BackpressureError) as exc:
                processed += 1
                if not schedule_retry(tx, attempt):
                    record_drop(tx, type(exc).__name__)
                continue
            processed += 1
            if attempt > 1:
                retried_ok += 1
            accepted += 1
            self._ensure_production()
        self._admission_processed += processed
        if retried_ok:
            self._retries_succeeded.inc(retried_ok)
        return accepted

    def on_commit(self, listener: Callable[[Transaction], None]) -> None:
        self._commit_listeners.append(listener)

    def on_drop(self, listener: Callable[[Transaction], None]) -> None:
        """Observe every client-visible drop (see :meth:`_record_drop`)."""
        self._drop_listeners.append(listener)

    # -- block production --------------------------------------------------------------------

    def start(self) -> None:
        """Begin block production (idle chains still produce empty slots
        only when transactions arrive — empty blocks carry no information
        for the benchmark and would triple the event count)."""
        self._ensure_production()

    def _ensure_production(self) -> None:
        if self._producing:
            return
        self._producing = True
        delay = self.model.next_block_delay(self._last_round_latency)
        self.engine.schedule_after(delay + self.params.gossip_hop,
                                   self._produce_block,
                                   label=f"{self.params.name}-block")

    def _produce_block(self) -> None:
        now = self.engine.now
        self._expire_pool(now)
        self._update_memory(now)
        self.admission.drain()
        if not self._quorum_available():
            # the fault schedule took out too many validators (or split
            # them): no side of the network can assemble a commit quorum,
            # so the chain stalls — the §6.3/§6.5 availability dip.
            # Transactions keep queueing (or expiring) in the mempool.
            self._stalled_rounds.inc()
            self.engine.schedule_after(
                self.model.next_block_delay(self._last_round_latency),
                self._produce_block, label=f"{self.params.name}-stalled")
            return
        if self._overload_stalled:
            # commit stall: consensus is thrashing under memory pressure
            # and stops making progress (Diem under constant 10 kTPS, §6.3)
            self._stalled_rounds.inc()
            self.engine.schedule_after(
                self.model.next_block_delay(self._last_round_latency),
                self._produce_block, label=f"{self.params.name}-memstall")
            return
        backlog = len(self.mempool)
        if backlog == 0:
            needs_confirmations = (
                self.params.confirmation_depth > 0
                and self.ledger.height > self._committed_height)
            if needs_confirmations:
                # chains with a confirmation depth keep sealing empty blocks
                # (Solana's PoH clock ticks regardless of load) — without
                # them, the last transactions would never reach finality
                self._seal_block([], backlog=0)
                return
            if self.active_until is not None and now < self.active_until:
                self.engine.schedule_after(
                    self.model.next_block_delay(self._last_round_latency),
                    self._produce_block, label=f"{self.params.name}-idle")
            else:
                self._producing = False
            return
        backlog_unscaled = int(backlog / self.scale.factor)
        factor = self.model.payload_factor(backlog_unscaled,
                                           self.reference_block_txs())
        gas_cap = (None if self._gas_cap is None
                   else max(21_000, int(self._gas_cap * factor)))
        tx_cap = (None if self._tx_cap is None
                  else max(1, int(self._tx_cap * factor)))
        batch = self.mempool.pop_batch(max_count=tx_cap, max_gas=gas_cap,
                                       max_bytes=self._bytes_cap)
        if not batch:
            self.engine.schedule_after(
                self.model.next_block_delay(self._last_round_latency),
                self._produce_block, label=f"{self.params.name}-retry")
            return
        self._seal_block(batch, backlog)

    # -- resource-exhaustion model (§6 crash-under-load) ---------------------------

    def _update_memory(self, now: float) -> None:
        """Re-price every node's memory footprint; fire overload responses.

        Three categories, in unscaled units so behaviour is invariant under
        ``REPRO_SCALE``:

        * ``mempool``    resident pool plus admission queue, priced at the
                         wire-plus-index cost per pending transaction;
        * ``consensus``  undecayed backlog debt — every arrival that paid
                         the full admission path (including pool
                         rejections, whose churn artifacts linger in
                         consensus buffers) minus every transaction sealed
                         into a block;
        * ``state``      ledger/state growth per committed transaction.

        The validator set replicates the same data, so the levels are
        identical per node; jittered per-node capacity margins stagger
        when each crosses its own high-water mark.
        """
        overload = self.overload
        if overload.response == "none":
            return
        factor = self.scale.factor
        pending = (len(self.mempool) + self.admission.queue_depth) / factor
        debt = max(0, self._admission_processed - self._pipeline_exits) / factor
        settled = self._pipeline_exits / factor
        pool_bytes = int(pending * overload.pool_tx_bytes)
        consensus_bytes = int(debt * overload.consensus_tx_bytes)
        state_bytes = int(settled * overload.state_tx_bytes)
        pressure = 0.0
        for index, machine in enumerate(self.machines):
            ledger = machine.memory
            if self._node_available(index):
                # a crashed node's footprint freezes where it died
                ledger.set_level("mempool", pool_bytes)
                ledger.set_level("consensus", consensus_bytes)
                ledger.set_level("state", state_bytes)
            pressure = max(pressure, ledger.pressure)
        self.memory_pressure = pressure
        self.peak_memory_pressure = max(self.peak_memory_pressure, pressure)
        if overload.response == "oom_crash":
            self._respond_oom_crash(now)
        elif overload.response == "commit_stall":
            self._respond_commit_stall(now)
        elif overload.response == "shed_load":
            self._respond_shed_load(now)

    def _overload_event(self, now: float, kind: str, **extra: Any) -> None:
        event: Dict[str, Any] = {
            "at": round(now, 3), "kind": kind, "chain": self.params.name,
            "pressure": round(self.memory_pressure, 3)}
        event.update(extra)
        self.overload_events.append(event)

    def _respond_oom_crash(self, now: float) -> None:
        """Solana-style: validators past their high-water mark OOM-crash."""
        for index, machine in enumerate(self.machines):
            if machine.memory.state != "high":
                continue
            if not self._node_available(index):
                continue
            if self.injector is None:
                # overload can crash nodes even without a fault schedule:
                # the simulation drives the injector itself
                self.attach_faults(FaultInjector())
            self.injector.crash(index)
            self._overload_event(
                now, "oom_crash", node=machine.name,
                pressure=round(machine.memory.pressure, 3))

    def _respond_commit_stall(self, now: float) -> None:
        """Diem-style: consensus stops committing under memory pressure."""
        high = any(m.memory.state == "high" for m in self.machines)
        if high and not self._overload_stalled:
            self._overload_stalled = True
            self._overload_event(now, "commit_stall")
        elif not high and self._overload_stalled:
            self._overload_stalled = False
            self._overload_event(now, "commit_resumed")

    def _respond_shed_load(self, now: float) -> None:
        """Survivor-style: shed excess load at the door, keep committing."""
        high = any(m.memory.state == "high" for m in self.machines)
        if high and not self._shedding:
            self._shedding = True
            target = max(1, int(self.reference_block_txs()
                                * self.overload.shed_pool_blocks
                                * self.scale.factor))
            self.admission.set_shedding(True, target)
            self._overload_event(now, "shed_start", pool_target=target)
        elif not high and self._shedding:
            self._shedding = False
            self.admission.set_shedding(False)
            self._overload_event(now, "shed_stop")

    def _next_leader(self) -> Tuple[int, int]:
        """(leader index, crashed leaders skipped) for the next block.

        Round-robin rotation, skipping validators the fault schedule has
        taken down; every skip costs a view change (the protocol had to
        time out on the dead proposer before rotating past it).
        """
        n = len(self.endpoints)
        skipped = 0
        for _ in range(n):
            index = self._leader_cursor % n
            self._leader_cursor += 1
            if self._node_available(index):
                return index, skipped
            skipped += 1
        # _quorum_available gates production, so a live node exists; keep
        # the last index as a fallback for direct (unguarded) callers
        return index, skipped

    def _seal_block(self, batch: Sequence[Transaction], backlog: int) -> None:
        backlog_unscaled = int(backlog / self.scale.factor)
        leader_index, skipped = self._next_leader()
        leader = self.endpoints[leader_index]
        # execute the block on the leader's machine
        receipts, exec_cpu = self._execute_batch(batch)
        machine = self.machines[leader_index]
        exec_time = (self.scale.inflate_cpu(exec_cpu)
                     / max(1.0, self.params.exec_parallelism))
        machine.execute(self.scale.inflate_cpu(exec_cpu))
        payload_bytes = sum(self.scale.inflate_bytes(tx.size) for tx in batch)
        attempt = BlockAttempt(
            tx_count=len(batch),
            payload_bytes=payload_bytes,
            exec_cpu_seconds=exec_time,
            backlog=backlog_unscaled,
            leader_region=leader.region,
            arrival_rate=self.arrival_rate())
        if self.byzantine_schedule is not None:
            self.model.set_byzantine_fraction(
                self.byzantine_schedule.active_fraction(
                    self.engine.now, len(self.endpoints)))
        outcome = self.model.decide(attempt)
        if self.byzantine_schedule is not None:
            was_committed = outcome.committed
            outcome = self.model.apply_byzantine(outcome)
            if was_committed and not outcome.committed:
                self._byzantine_stalled_blocks.inc()
                if self.tracer is not None:
                    self.tracer.adversary_action(
                        self.engine.now, "quorum_denied",
                        height=self.ledger.height + 1)
        self._view_changes.inc(outcome.view_changes + skipped)
        latency = outcome.latency + skipped * max(self._last_round_latency, 0.5)
        self._last_round_latency = max(latency, 1e-3)
        bid = -1
        if self.tracer is not None:
            bid = self.tracer.block_sealed(
                self.engine.now, self.ledger.height + 1, leader.name,
                batch, exec_time, outcome)
        if outcome.committed:
            self.engine.schedule_after(
                latency,
                lambda: self._append_block(batch, receipts, leader.name, bid),
                label=f"{self.params.name}-append")
        else:
            # the round-change cascade gave up: the transactions return to
            # the pool and the next attempt starts after the wasted rounds
            self._blocks_failed.inc()
            if self.tracer is not None and bid >= 0:
                self.tracer.block_requeued(bid, self.engine.now)
            for tx in batch:
                self.mempool.try_add(tx)
        delay = self.model.next_block_delay(self._last_round_latency)
        self.engine.schedule_after(delay, self._produce_block,
                                   label=f"{self.params.name}-block")

    def _execute_batch(self, batch: Sequence[Transaction]
                       ) -> Tuple[List[Receipt], float]:
        height = self.ledger.height + 1
        receipts: List[Receipt] = []
        cpu = 0.0
        verify = self.params.signature_scheme.verify_cost
        for tx in batch:
            receipt = self.vm.execute(self.state, tx, block_height=height)
            receipts.append(receipt)
            self.receipts[tx.uid] = receipt
            cpu += self.vm.cpu_cost(receipt.gas_used) + verify
        return receipts, cpu

    def _append_block(self, batch: Sequence[Transaction],
                      receipts: Sequence[Receipt], proposer: str,
                      bid: int = -1) -> None:
        now = self.engine.now
        block = Block(
            height=self.ledger.height + 1,
            parent_hash=self.ledger.head.block_hash,
            proposer=proposer,
            transactions=list(batch),
            timestamp=now,
            gas_used=sum(r.gas_used for r in receipts))
        self.ledger.append(block, decided_at=now)
        if self.fee_market is not None:
            # sealed transactions pay their effective price whether or not
            # execution succeeded (failed executions still burn gas), and
            # the block's usage moves the base fee for the next block
            for tx, receipt in zip(batch, receipts):
                self.fee_market.charge(tx, receipt.gas_used)
            self.fee_market.on_block(block.gas_used)
        if self.tracer is not None and bid >= 0:
            self.tracer.block_appended(bid, now)
        self._finalize_ready()

    def _finalize_ready(self) -> None:
        """Commit every block that has reached the confirmation depth."""
        depth = self.params.confirmation_depth
        final_height = self.ledger.height - depth
        for height in range(self._committed_height + 1, final_height + 1):
            final_time = self.ledger.final_at(height)
            if final_time is None:
                continue
            for tx in self.ledger.block_at(height).transactions:
                self._mark_committed(tx, final_time)
        self._committed_height = max(self._committed_height, final_height)

    def _mark_committed(self, tx: Transaction, final_time: float) -> None:
        # sealed into a finalized block — success or execution failure, the
        # transaction has left the consensus pipeline and paid off its debt
        self._pipeline_exits += 1
        receipt = self.receipts.get(tx.uid)
        if receipt is not None and not receipt.ok:
            # the transaction is in a block but its execution failed — the
            # client sees an error ("budget exceeded", revert, out-of-gas),
            # not a commit (§6.4 / experiment E2)
            self._record_drop(tx, receipt.status.value)
            return
        observation = self._observation_delay()
        tx.committed_at = final_time + observation
        if self.tracer is not None:
            self.tracer.tx_committed(tx, final_time, tx.committed_at)
        self.committed.append(tx)
        for listener in self._commit_listeners:
            listener(tx)

    def _observation_delay(self) -> float:
        """Client-side commit detection delay (§5.2 per-chain APIs)."""
        api = self.params.commit_api
        if api == "stream":
            return 0.01   # web-socket push from the collocated node
        if api == "poll":
            return self.params.poll_interval / 2
        # blocking API: one round trip per transaction plus server queueing
        return self.params.poll_interval

    def _expire_pool(self, now: float) -> None:
        if self.params.tx_expiry is None:
            return
        policy = self.retry_policy
        for tx in self.mempool.drop_expired(now, self.params.tx_expiry):
            if (policy is not None and policy.resubmit_on_expiry
                    and self._schedule_retry(tx, self._attempts.get(tx.uid, 1))):
                continue
            self._record_drop(tx, "expired")

    # -- results ----------------------------------------------------------------------------------

    def drain(self, until: float) -> None:
        """Run the engine until *until* to let in-flight blocks land."""
        self.engine.run(until=until)

    def stats(self) -> Dict[str, float]:
        committed = len(self.committed)
        stats: Dict[str, float] = {
            "height": self.ledger.height,
            "committed": committed,
            "dropped": len(self.dropped),
            "pending": len(self.mempool),
            "blocks_failed": self.blocks_failed,
            "view_changes": self.view_changes_total,
        }
        for reason, count in sorted(self.drop_reasons.items()):
            stats[f"dropped_{reason}"] = count
        for key, value in self.mempool.stats().items():
            stats[f"mempool_{key}"] = value
        for key, value in self.admission.stats().items():
            stats[f"admission_{key}"] = value
        if self.overload.response != "none":
            stats["memory_pressure_peak"] = round(self.peak_memory_pressure, 4)
            stats["overload_events"] = len(self.overload_events)
        if self.retry_policy is not None:
            stats["retries_scheduled"] = self.retries_scheduled
            stats["retries_succeeded"] = self.retries_succeeded
        if self.fee_market is not None:
            for key, value in self.fee_market.stats().items():
                stats[f"fees_{key}"] = value
        if self.injector is not None:
            stats["stalled_rounds"] = self.stalled_rounds
            stats["fault_events_applied"] = len(self.injector.events_applied)
        if self.byzantine_schedule is not None:
            stats["byzantine_stalled_blocks"] = (
                self._byzantine_stalled_blocks.value)
            stats["byzantine_events"] = len(self.byzantine_schedule)
        for lane, count in sorted(self.lane_arrivals.items()):
            stats[f"arrivals_{lane}"] = count
        return stats
