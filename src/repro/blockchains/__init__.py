"""The six simulated blockchains and their shared runtime."""

from repro.blockchains.base import (
    BlockchainNetwork,
    ChainParams,
    ExperimentScale,
    SubmissionResult,
    default_scale,
)

__all__ = [
    "BlockchainNetwork",
    "ChainParams",
    "ExperimentScale",
    "SubmissionResult",
    "default_scale",
]
