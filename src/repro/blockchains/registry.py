"""Registry of the six evaluated blockchains (Table 4)."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.blockchains import (
    algorand,
    avalanche,
    diem,
    ethereum,
    quorum,
    solana,
)
from repro.blockchains.base import (
    BlockchainNetwork,
    ChainParams,
    ExperimentScale,
)
from repro.common.errors import ConfigurationError
from repro.sim.deployment import DeploymentConfig, get_configuration
from repro.sim.engine import Engine

ParamsFactory = Callable[[DeploymentConfig], ChainParams]

CHAINS: Dict[str, ParamsFactory] = {
    "algorand": algorand.params,
    "avalanche": avalanche.params,
    "diem": diem.params,
    "ethereum": ethereum.params,
    "quorum": quorum.params,
    "solana": solana.params,
}

CHAIN_NAMES = tuple(sorted(CHAINS))


def chain_params(name: str, deployment: DeploymentConfig) -> ChainParams:
    """Build the ChainParams for chain *name* in *deployment*."""
    try:
        factory = CHAINS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown blockchain {name!r}; available: {CHAIN_NAMES}") from None
    return factory(deployment)


def build_network(name: str, deployment: str | DeploymentConfig,
                  engine: Optional[Engine] = None,
                  scale: Optional[ExperimentScale] = None,
                  seed: int = 0) -> BlockchainNetwork:
    """Deploy chain *name* in *deployment* on a (possibly fresh) engine."""
    if isinstance(deployment, str):
        deployment = get_configuration(deployment)
    params = chain_params(name, deployment)
    return BlockchainNetwork(params, deployment, engine or Engine(),
                             scale=scale, seed=seed)


def characteristics_table() -> List[Dict[str, str]]:
    """Rows of the paper's Table 4 (blockchain characteristics)."""
    from repro.sim.deployment import TESTNET
    rows = []
    for name in CHAIN_NAMES:
        params = chain_params(name, TESTNET)
        rows.append({
            "blockchain": params.name,
            "properties": params.properties,
            "consensus": params.consensus_name,
            "vm": params.vm_name,
            "dapp_language": params.dapp_language,
        })
    return rows
