"""Algorand — BA* with sortition, AVM/TEAL smart contracts (§5.2).

Algorand's committee-based agreement keeps message complexity flat in the
number of nodes, so its throughput is nearly configuration-independent
(~885 TPS best, on the testnet — Table 1) and it is the only chain besides
Solana above 820 TPS on the geo-distributed devnet (§6.2). Its commit
latency is a few BA* rounds (observed 8.5 s average).

DIABLO integration detail the paper highlights: the natural *blocking*
submit API was too slow under load, so "we made DIABLO poll every appended
block to detect transaction commits, which improved significantly
Algorand's performance" — the default here is the polling API, and the
blocking variant is an ablation benchmark.

The AVM's hard opcode budget and 128-byte key-value state limit live in
:mod:`repro.vm.machines`; they are what reject the Mobility DApp ("budget
exceeded") and make the video sharing DApp unimplementable (§5.2).
"""

from __future__ import annotations

from repro.chain.mempool import MempoolPolicy
from repro.consensus.models import CommitteePerf, WanProfile
from repro.crypto.signing import ED25519
from repro.blockchains.base import ChainParams, OverloadPolicy
from repro.econ.fees import FeePolicy
from repro.sim.deployment import DeploymentConfig

BLOCK_GAS_LIMIT = 75_600_000  # = 3,600 transfers per block
MEMPOOL_CAPACITY = 7_700
MIN_ROUND = 3.6
POLL_INTERVAL = 1.0


def _perf(profile: WanProfile) -> CommitteePerf:
    return CommitteePerf(profile, proposal_window=1.2, vote_steps=2,
                         overload_gamma=0.42, min_round=MIN_ROUND)


def params(deployment: DeploymentConfig) -> ChainParams:
    """Algorand chain parameters (identical across deployments)."""
    return ChainParams(
        name="algorand",
        consensus_name="BA*",
        properties="probabilistic",
        vm_name="avm",
        dapp_language="PyTeal",
        signature_scheme=ED25519,
        block_gas_limit=BLOCK_GAS_LIMIT,
        mempool_policy=MempoolPolicy(capacity=MEMPOOL_CAPACITY),
        confirmation_depth=0,        # "does not fork with high probability"
        commit_api="poll",           # the DIABLO polling workaround (§5.2)
        poll_interval=POLL_INTERVAL,
        exec_parallelism=2.0,
        # Algorand keeps committing at capacity through a 10x overload by
        # rejecting the excess at the node (§6.3 — throughput holds while
        # most submissions are turned away)
        # flat 1000-microAlgo minimum fee, no prioritization:
        # paying more buys nothing, so attackers can only flood
        fee_policy=FeePolicy(dialect="flat", min_fee=1),
        overload=OverloadPolicy(
            response="shed_load",
            consensus_tx_bytes=16 * 1024),
        perf_model=_perf)
