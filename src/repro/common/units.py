"""Unit helpers: time, data sizes and rates.

The simulation keeps time as ``float`` seconds of virtual time. These helpers
exist so that configuration code reads like the paper ("8 GiB", "10 Gbps",
"1.9 s block period") instead of bare numbers.
"""

from __future__ import annotations

# -- time ------------------------------------------------------------------

MILLISECOND = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0


def ms(value: float) -> float:
    """Milliseconds to seconds."""
    return value * MILLISECOND


def seconds(value: float) -> float:
    """Identity, for symmetry in configuration code."""
    return value * SECOND


def minutes(value: float) -> float:
    """Minutes to seconds."""
    return value * MINUTE


# -- data sizes (bytes) ------------------------------------------------------

KB = 1000
MB = 1000**2
GB = 1000**3
KIB = 1024
MIB = 1024**2
GIB = 1024**3


def kib(value: float) -> int:
    return int(value * KIB)


def mib(value: float) -> int:
    return int(value * MIB)


def gib(value: float) -> int:
    return int(value * GIB)


# -- rates -------------------------------------------------------------------


def mbps(value: float) -> float:
    """Megabits per second to bytes per second."""
    return value * 1e6 / 8


def gbps(value: float) -> float:
    """Gigabits per second to bytes per second."""
    return value * 1e9 / 8


def tps(value: float) -> float:
    """Transactions per second (identity; documentation helper)."""
    return float(value)
