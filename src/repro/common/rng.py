"""Deterministic random-number streams.

Every stochastic component of the simulation (network jitter, sortition,
Avalanche sampling, workload arrival times) draws from its own named stream
derived from a single experiment seed. Runs are therefore reproducible
bit-for-bit, and changing one component's consumption pattern does not
perturb the others.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from a root seed and a path of stream names."""
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(name.encode())
    return int.from_bytes(digest.digest()[:8], "big")


class RngFactory:
    """Factory handing out independent, named numpy Generators.

    >>> factory = RngFactory(42)
    >>> a = factory.stream("network")
    >>> b = factory.stream("network")   # same name -> same sequence start
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)

    def stream(self, *names: str) -> np.random.Generator:
        """Return a fresh Generator for the stream identified by *names*."""
        return np.random.default_rng(derive_seed(self.root_seed, *names))

    def child(self, *names: str) -> "RngFactory":
        """Return a factory whose streams are namespaced under *names*."""
        return RngFactory(derive_seed(self.root_seed, *names, "__child__"))


#: default pre-draw block size for :class:`BlockSampler`
BLOCK_DRAW = 4096


class BlockSampler:
    """Scalar draws from one distribution, served from pre-drawn blocks.

    numpy Generators fill vectorized requests by running the same
    underlying routine once per element, so ``gen.random(n)`` yields
    bit-for-bit the floats of ``n`` successive ``gen.random()`` calls
    (likewise for ``lognormal`` and the other fixed-parameter
    distributions). A hot path that draws one value per event can
    therefore pre-draw a block and serve Python floats from it — same
    sequence, a fraction of the per-call Generator overhead.

    The sampler must *own* its named stream: any other draw interleaved
    on the same Generator would land in the middle of a pre-drawn block
    and diverge from the scalar-call sequence. Distribution parameters
    are fixed at construction for the same reason.

    >>> factory = RngFactory(7)
    >>> fast = BlockSampler(factory.stream("jitter"), "random", block=8)
    >>> slow = factory.stream("jitter")
    >>> all(fast.next() == float(slow.random()) for _ in range(20))
    True
    """

    __slots__ = ("_draw", "_block", "_buffer", "_index")

    def __init__(self, stream: np.random.Generator, distribution: str,
                 *params: float, block: int = BLOCK_DRAW) -> None:
        if block < 1:
            raise ValueError(f"block size must be >= 1, got {block}")
        method = getattr(stream, distribution)
        self._draw = lambda n: method(*params, n)
        self._block = block
        self._buffer: list = []
        self._index = 0

    def next(self) -> float:
        """The next value of the stream, as a Python float."""
        index = self._index
        buffer = self._buffer
        if index >= len(buffer):
            # ndarray.tolist() yields exact Python floats (no rounding)
            buffer = self._buffer = self._draw(self._block).tolist()
            index = 0
        self._index = index + 1
        return buffer[index]
