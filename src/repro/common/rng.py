"""Deterministic random-number streams.

Every stochastic component of the simulation (network jitter, sortition,
Avalanche sampling, workload arrival times) draws from its own named stream
derived from a single experiment seed. Runs are therefore reproducible
bit-for-bit, and changing one component's consumption pattern does not
perturb the others.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from a root seed and a path of stream names."""
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(name.encode())
    return int.from_bytes(digest.digest()[:8], "big")


class RngFactory:
    """Factory handing out independent, named numpy Generators.

    >>> factory = RngFactory(42)
    >>> a = factory.stream("network")
    >>> b = factory.stream("network")   # same name -> same sequence start
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)

    def stream(self, *names: str) -> np.random.Generator:
        """Return a fresh Generator for the stream identified by *names*."""
        return np.random.default_rng(derive_seed(self.root_seed, *names))

    def child(self, *names: str) -> "RngFactory":
        """Return a factory whose streams are namespaced under *names*."""
        return RngFactory(derive_seed(self.root_seed, *names, "__child__"))
