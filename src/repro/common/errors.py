"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
The VM/chain errors mirror the failure modes the paper reports: transactions
rejected by the mempool, transactions aborted because a hard execution budget
was exceeded ("budget exceeded" in §6.4), underpriced transactions after a
fee update, and stale block hashes (Solana's 120-second recency rule).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A benchmark, workload or deployment configuration is invalid."""


class SpecError(ConfigurationError):
    """The workload specification document cannot be parsed or resolved."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SafetyViolationError(SimulationError):
    """A consensus safety invariant (agreement, total order, certificate
    validity) was violated during a run — raised by the ``SafetyAuditor``
    in strict mode, carrying the forensic report of the first violation."""

    def __init__(self, message: str, violation=None) -> None:
        super().__init__(message)
        #: forensic record: check, height, nodes, conflicting values, times
        self.violation = violation


class NetworkError(SimulationError):
    """A message could not be delivered by the simulated network."""


class ChainError(ReproError):
    """Base class for blockchain-level failures."""


class UnknownAccountError(ChainError):
    """A transaction references an account that does not exist."""


class InvalidTransactionError(ChainError):
    """A transaction is malformed or fails signature/nonce validation."""


class MempoolFullError(ChainError):
    """The node's memory pool rejected a transaction because it is full."""


class SenderQuotaError(MempoolFullError):
    """Per-sender mempool quota exceeded (Diem's 100-transaction limit)."""


class MempoolBytesError(MempoolFullError):
    """The pool's resident byte budget is exhausted (size-based rejection)."""


class BackpressureError(ChainError):
    """A node pushed back on a client submission before pool admission.

    Backpressure rejections are transient by construction — the client is
    expected to back off and retry, so :class:`~repro.blockchains.base.
    RetryPolicy` treats every subclass as retryable.
    """


class NodeOverloadedError(BackpressureError):
    """The node is shedding load under memory pressure (§6 overload)."""


class AdmissionQueueFullError(BackpressureError):
    """The node's admission queue (in front of the pool) is full."""


class StaleBlockHashError(ChainError):
    """The referenced recent block hash is too old (Solana's 120 s rule)."""


class UnderpricedError(MempoolFullError):
    """The transaction's price is below the mempool's current fee floor.

    A :class:`MempoolFullError` subclass on purpose: an underpriced
    rejection is retryable — the client's fee-bumping retry path treats
    it exactly like a full pool, resubmitting at a higher price.
    """


class VMError(ChainError):
    """Base class for virtual-machine execution failures."""


class BudgetExceededError(VMError):
    """Execution exceeded the VM's hard computational budget.

    This is the error Algorand, Diem and Solana report when running the
    Mobility service DApp (paper §6.4 / experiment E2).
    """


class OutOfGasError(VMError):
    """Execution ran out of the gas supplied with the transaction."""


class StateLimitError(VMError):
    """Contract state exceeds the VM's storage limits.

    Algorand's AVM limits state to key-value pairs of 128 bytes, which is why
    the video sharing DApp cannot be implemented in TEAL (paper §5.2).
    """


class UnsupportedOperationError(VMError):
    """The VM/language does not support the requested operation.

    E.g. floating point operations in PyTeal and Move (paper §3, Mobility).
    """


class ContractError(VMError):
    """The contract itself aborted (e.g. require() failed)."""


class DeploymentError(ReproError):
    """A blockchain network could not be deployed in a configuration.

    E.g. Diem's setup tools failing after creating 130 accounts (§5.2).
    """
