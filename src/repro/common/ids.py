"""Compact deterministic identifiers used throughout the simulation."""

from __future__ import annotations

import hashlib
import itertools
from typing import Iterator


def short_hash(*parts: object, length: int = 16) -> str:
    """Deterministic hex identifier derived from the given parts."""
    digest = hashlib.sha256("|".join(str(p) for p in parts).encode())
    return digest.hexdigest()[:length]


class IdAllocator:
    """Monotonically increasing integer ids with an optional prefix.

    >>> alloc = IdAllocator("tx")
    >>> alloc.next(), alloc.next()
    ('tx-0', 'tx-1')
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._counter: Iterator[int] = itertools.count()

    def next(self) -> str:
        value = next(self._counter)
        return f"{self.prefix}-{value}" if self.prefix else str(value)

    def next_int(self) -> int:
        return next(self._counter)
