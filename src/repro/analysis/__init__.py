"""Result analysis: CSV export, comparison tables, time series, CDFs."""

from repro.analysis.summary import (
    CSV_COLUMNS,
    binding_subsystem,
    cdf_points,
    comparison_table,
    dos_report,
    economic_impact,
    format_table,
    knee_table,
    population_report,
    results_to_csv,
    throughput_timeseries,
    transactions_to_csv,
)

__all__ = [
    "CSV_COLUMNS",
    "binding_subsystem",
    "cdf_points",
    "comparison_table",
    "dos_report",
    "economic_impact",
    "format_table",
    "knee_table",
    "population_report",
    "results_to_csv",
    "throughput_timeseries",
    "transactions_to_csv",
]
