"""Post-mortem analysis of benchmark results.

The real DIABLO ships a ``csv-results`` script converting the Primary's
JSON output to CSV rows (artifact appendix A.3); this module reproduces
that plus the aggregations the paper's figures are built from.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.results import BenchmarkResult

CSV_COLUMNS = (
    "chain", "configuration", "workload", "submitted", "committed",
    "average_load_tps", "average_throughput_tps", "average_latency_s",
    "median_latency_s", "p95_latency_s", "p99_latency_s", "commit_ratio",
)

#: metric names computed from the result object rather than read out of
#: ``summary()`` (tail latencies are analysis-side: adding them to the
#: summary would change the serialized result format)
_COMPUTED_METRICS = {
    "p95_latency_s": lambda result: result.latency_percentile(95),
    "p99_latency_s": lambda result: result.latency_percentile(99),
}


def _tail_latency(result: BenchmarkResult, q: float) -> Optional[float]:
    value = result.latency_percentile(q)
    return None if np.isnan(value) else round(value, 3)


def results_to_csv(results: Iterable[BenchmarkResult]) -> str:
    """One CSV row per benchmark run (the csv-results equivalent)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_COLUMNS)
    writer.writeheader()
    for result in results:
        summary = result.summary()
        writer.writerow({
            "chain": summary["chain"],
            "configuration": summary["configuration"],
            "workload": summary["workload"],
            "submitted": summary["submitted"],
            "committed": sum(1 for r in result.records if r.committed),
            "average_load_tps": summary["average_load_tps"],
            "average_throughput_tps": summary["average_throughput_tps"],
            "average_latency_s": summary["average_latency_s"],
            "median_latency_s": summary["median_latency_s"],
            "p95_latency_s": _tail_latency(result, 95),
            "p99_latency_s": _tail_latency(result, 99),
            "commit_ratio": summary["commit_ratio"],
        })
    return buffer.getvalue()


def transactions_to_csv(result: BenchmarkResult) -> str:
    """Per-transaction CSV: submission time and commit latency.

    Mirrors the artifact's per-line output ("the first submitted transaction
    for Algorand at time 0.10 second took 0.53 seconds to commit").
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["submitted_at", "latency_s", "committed", "abort_reason"])
    for record in sorted(result.records, key=lambda r: r.submitted_at):
        writer.writerow([
            f"{record.submitted_at:.2f}",
            f"{record.latency:.2f}" if record.latency is not None else "",
            int(record.committed),
            record.abort_reason or "",
        ])
    return buffer.getvalue()


def comparison_table(results: Dict[str, BenchmarkResult],
                     metrics: Sequence[str] = ("average_throughput_tps",
                                               "average_latency_s",
                                               "p95_latency_s",
                                               "p99_latency_s",
                                               "commit_ratio")) -> List[Dict]:
    """Rows comparing chains on the same workload (a figure's bars).

    ``metrics`` may name any ``summary()`` key plus the computed tail
    latencies ``p95_latency_s``/``p99_latency_s``.
    """
    rows = []
    for chain, result in sorted(results.items()):
        summary = result.summary()
        row = {"chain": chain}
        for metric in metrics:
            computed = _COMPUTED_METRICS.get(metric)
            if computed is not None:
                value = computed(result)
                row[metric] = None if np.isnan(value) else round(value, 3)
            else:
                row[metric] = summary[metric]
        rows.append(row)
    return rows


def format_table(rows: List[Dict], float_format: str = "{:.2f}") -> str:
    """Render rows as an aligned text table (for bench stdout)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    rendered: List[List[str]] = [columns]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column)
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(line[i]) for line in rendered)
              for i in range(len(columns))]
    lines = []
    for line_index, line in enumerate(rendered):
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(line)))
        if line_index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def degradation_report(result: BenchmarkResult) -> str:
    """Availability report for a faulted run (text, for bench stdout).

    Shows the commit ratio before/during/after the fault window, the time
    the chain took to commit again after the last repair, and the client
    retry burden — the robustness counterpart of the paper's §6.5 drop
    accounting.
    """
    info = result.degradation()
    if info is None:
        return "(no faults injected)"
    start, end = info["fault_window"]
    ttr = info["time_to_recover_s"]
    lines = [
        f"fault window          {start:.1f}s .. {end:.1f}s",
        f"commit ratio before   {info['commit_ratio_before']:.2%}",
        f"commit ratio during   {info['commit_ratio_during']:.2%}",
        f"commit ratio after    {info['commit_ratio_after']:.2%}",
        "time to recover       "
        + (f"{ttr:.2f}s" if ttr is not None else "never recovered"),
        f"retries per tx        {info['retries_per_tx']:.2f}",
    ]
    events = ", ".join(
        f"{e['kind']}@{e['at']:.0f}s" for e in result.fault_events)
    lines.append(f"events                {events}")
    return "\n".join(lines)


def overload_report(result: BenchmarkResult) -> str:
    """Resource-exhaustion report for an overloaded run (text).

    Narrates the §6 crash-under-load observations: which validators
    OOM-crashed and when, when consensus stalled, when admission started
    shedding, how hard the pool dropped, and the watchdog's verdict.
    """
    lines = [f"run status            {result.status}"]
    peak = result.chain_stats.get("memory_pressure_peak")
    if peak is not None:
        lines.append(f"peak memory pressure  {float(peak):.0%} of RAM")
    for event in result.overload_events:
        kind = event["kind"]
        at = event["at"]
        if kind == "oom_crash":
            lines.append(f"node {event['node']} OOM-crashed at t={at:.1f}s"
                         f" ({event['pressure']:.0%} of RAM)")
        elif kind == "commit_stall":
            lines.append(f"consensus stalled under memory pressure"
                         f" at t={at:.1f}s")
        elif kind == "commit_resumed":
            lines.append(f"consensus resumed at t={at:.1f}s")
        elif kind == "shed_start":
            lines.append(f"admission shedding load from t={at:.1f}s")
        elif kind == "shed_stop":
            lines.append(f"admission stopped shedding at t={at:.1f}s")
        else:
            lines.append(f"{kind} at t={at:.1f}s")
    if not result.overload_events:
        lines.append("(no overload responses fired)")
    drops = {key: int(value) for key, value in result.chain_stats.items()
             if key.startswith("mempool_drop_")}
    shed = int(result.chain_stats.get("admission_shed_rejections", 0))
    if shed:
        drops["shed_at_door"] = shed
    if drops:
        lines.append("drop reasons          " + ", ".join(
            f"{key.replace('mempool_drop_', '')}={value}"
            for key, value in sorted(drops.items())))
    stalled_at = result.stalled_at()
    if stalled_at is not None:
        lines.append(f"watchdog: no commit progress since t={stalled_at:.1f}s"
                     f" — run marked {result.status}")
    for event in result.liveness_events:
        if event["kind"] == "deadline_hit":
            lines.append(f"deadline of {event['deadline']:.0f}s simulated"
                         f" seconds hit at t={event['at']:.1f}s")
    return "\n".join(lines)


def _p50(result: BenchmarkResult) -> Optional[float]:
    """Median commit latency over the whole horizon (drain included).

    Under attack honest commits often land past the nominal duration
    window, so the windowed ``median_latency`` can be NaN while plenty
    of transactions did commit — the full-horizon median is the honest
    number to compare.
    """
    latencies = result.latencies()
    if latencies.size == 0:
        return None
    return float(np.median(latencies))


def economic_impact(baseline: BenchmarkResult,
                    attacked: BenchmarkResult) -> Dict[str, object]:
    """Cost-to-delay accounting for one chain: benign run vs attacked run.

    The headline number is ``cost_per_delay_s`` — fee units the attacker
    spent per second of added median honest latency. A high number means
    the fee market priced the attack out (economic resilience); a low
    number means blockspace was cheap to deny.
    """
    adversary = attacked.economics.get("adversary", {})
    base_p50 = _p50(baseline)
    attacked_p50 = _p50(attacked)
    delay = (attacked_p50 - base_p50
             if base_p50 is not None and attacked_p50 is not None else None)
    spend = adversary.get("spend", 0)
    # below ~10ms of added latency "cost per delay-second" is noise (an
    # attack can hurt through commit ratio while barely moving the median)
    cost_per_s = (round(spend / delay, 1)
                  if delay is not None and delay > 1e-2 else None)
    return {
        "chain": attacked.chain,
        "dialect": attacked.economics.get("dialect", "?"),
        "baseline_p50_s": (None if base_p50 is None else round(base_p50, 3)),
        "attacked_p50_s": (None if attacked_p50 is None
                           else round(attacked_p50, 3)),
        "delay_added_s": (None if delay is None else round(delay, 3)),
        "attacker_spend": spend,
        "cost_per_delay_s": cost_per_s,
        "baseline_commit_ratio": round(baseline.commit_ratio, 3),
        "attacked_commit_ratio": round(attacked.commit_ratio, 3),
        "attacker_committed": adversary.get("committed", 0),
        "attacker_dropped": adversary.get("dropped", 0),
        "exhausted_at_s": adversary.get("exhausted_at"),
    }


def dos_report(baseline: BenchmarkResult,
               attacked: BenchmarkResult) -> str:
    """Economic-DoS report for one chain (text, for bench stdout)."""
    info = economic_impact(baseline, attacked)
    adversary = attacked.economics.get("adversary", {})
    if not adversary:
        return "(no adversary ran)"

    def seconds(value: object) -> str:
        return f"{value:.2f}s" if isinstance(value, float) else "n/a"

    budget = adversary.get("budget", 0)
    spend = info["attacker_spend"]
    lines = [
        f"fee dialect           {info['dialect']}",
        f"attacker budget       {budget:,} fee units",
        f"attacker spend        {spend:,} fee units"
        + (f" ({spend / budget:.0%} of budget)" if budget else ""),
        f"honest p50 latency    {seconds(info['baseline_p50_s'])}"
        f" -> {seconds(info['attacked_p50_s'])}"
        f" (+{seconds(info['delay_added_s'])})",
        f"honest commit ratio   {info['baseline_commit_ratio']:.2%}"
        f" -> {info['attacked_commit_ratio']:.2%}",
    ]
    cost = info["cost_per_delay_s"]
    lines.append("cost to delay 1s      "
                 + (f"{cost:,.0f} fee units" if cost is not None
                    else "attack added no delay"))
    exhausted = info["exhausted_at_s"]
    if exhausted is not None:
        lines.append(f"budget exhausted      t={exhausted:.1f}s"
                     " (attack fizzled early)")
    lines.append(
        f"attack transactions   {adversary.get('submitted', 0)} submitted,"
        f" {adversary.get('committed', 0)} committed,"
        f" {adversary.get('dropped', 0)} dropped,"
        f" {adversary.get('skipped_budget', 0)} skipped (budget)")
    return "\n".join(lines)


def binding_subsystem(result: BenchmarkResult) -> str:
    """Which subsystem binds at saturation, read from the run's stats.

    Heuristic, in blame order: ``memory`` (overload responses fired or
    pressure hit the ceiling), ``admission`` (the ingress gate shed
    load), ``mempool`` (the pool dropped transactions), ``consensus``
    (nothing was shed or dropped, the backlog simply outran commits), or
    ``none`` (the run kept up). Used by the knee tables in docs/SCALE.md
    to name *why* each chain stops scaling.
    """
    if result.commit_ratio >= 0.95:
        return "none"
    stats = result.chain_stats
    pressure = float(stats.get("memory_pressure_peak", 0.0) or 0.0)
    if result.overload_events or pressure >= 1.0:
        return "memory"
    if int(stats.get("admission_shed_rejections", 0) or 0) > 0:
        return "admission"
    pool_drops = sum(int(value) for key, value in stats.items()
                     if key.startswith("mempool_drop_"))
    if pool_drops > 0 or int(stats.get("dropped", 0) or 0) > 0:
        return "mempool"
    return "consensus"


def knee_table(results: Dict[int, BenchmarkResult],
               knee_ratio: float = 0.9) -> List[Dict]:
    """Rows of a population-scale knee sweep for one chain.

    *results* maps a user count to the population run at that count
    (``run_population`` or a sweep's ``populations`` axis). Each row
    reports the population-scaled offered load, delivered throughput,
    commit ratio and p95 latency plus the binding subsystem; the first
    population whose commit ratio falls below *knee_ratio* is flagged as
    the knee — the population size where the chain stops keeping up.
    """
    rows: List[Dict] = []
    knee_found = False
    for users in sorted(results):
        result = results[users]
        scaled = (result.population or {}).get("population_scaled", {})
        ratio = float(scaled.get("commit_ratio", result.commit_ratio))
        at_knee = not knee_found and ratio < knee_ratio
        knee_found = knee_found or at_knee
        rows.append({
            "users": users,
            "offered_load_tps": scaled.get("offered_load_tps"),
            "throughput_tps": scaled.get("throughput_tps"),
            "commit_ratio": round(ratio, 4),
            "p95_latency_s": scaled.get("latency_p95_s"),
            "binding": binding_subsystem(result),
            "knee": at_knee,
        })
    return rows


def population_report(result: BenchmarkResult) -> str:
    """Population-run report (text, for the CLI and examples).

    Renders the three sections of the result's ``population`` block —
    cohort-exact, aggregate-lane and population-scaled — as aligned
    text, ending with the binding-subsystem verdict.
    """
    block = result.population
    if not block:
        return "(not a population run)"
    cohort = block["cohort_exact"]
    aggregate = block["aggregate_lane"]
    scaled = block["population_scaled"]

    def latency(section: Dict, key: str) -> str:
        value = section.get(key)
        return f"{value:.2f}s" if value is not None else "n/a"

    lines = [
        f"population            {block['users']:,} users"
        f" ({block['cohort_size']:,} tracked cohort,"
        f" {block['aggregate_users']:,} aggregate,"
        f" {block['arrival']} arrivals)",
        f"offered load          {scaled['offered_load_tps']:,.0f} TPS",
        f"delivered throughput  {scaled['throughput_tps']:,.1f} TPS",
        f"commit ratio          {scaled['commit_ratio']:.2%}"
        f" (cohort {cohort['commit_ratio']:.2%},"
        f" aggregate {aggregate['commit_ratio']:.2%})",
        f"cohort latency        p50 {latency(cohort, 'latency_p50_s')},"
        f" p95 {latency(cohort, 'latency_p95_s')}"
        f" ({cohort['submitted']} txs, full per-tx fidelity)",
        f"aggregate lane        {aggregate['submitted']:,} submitted,"
        f" {aggregate['committed']:,} committed,"
        f" {aggregate['dropped']:,} dropped",
        f"binding subsystem     {binding_subsystem(result)}",
        f"run status            {result.status}",
    ]
    return "\n".join(lines)


def throughput_timeseries(result: BenchmarkResult,
                          bin_size: float = 1.0) -> List[Dict[str, float]]:
    """Per-second load vs throughput rows (the paper's time series)."""
    times, tput = result.throughput_series(bin_size)
    _, load = result.load_series(bin_size)
    rows = []
    for i, t in enumerate(times):
        rows.append({
            "time": float(t),
            "load_tps": float(load[i]) if i < load.size else 0.0,
            "throughput_tps": float(tput[i]),
        })
    return rows


def cdf_points(result: BenchmarkResult,
               max_points: int = 200) -> List[Dict[str, float]]:
    """Down-sampled latency-CDF points for plotting (Fig. 6 style)."""
    latencies, fractions = result.latency_cdf()
    if latencies.size == 0:
        return []
    if latencies.size > max_points:
        idx = np.linspace(0, latencies.size - 1, max_points).astype(int)
        latencies, fractions = latencies[idx], fractions[idx]
    return [{"latency_s": float(l), "fraction": float(f)}
            for l, f in zip(latencies, fractions)]
